"""A Minesweeper-style constraint-based configuration verifier.

Minesweeper [Beckett et al., SIGCOMM'17] encodes the network's converged
states — over all failure scenarios up to a bound — as one big SMT formula
and asks the solver for a satisfying assignment that violates the policy.
This reproduction builds the analogous encoding over the from-scratch SAT
solver in :mod:`repro.baselines.sat`:

* one Boolean per potentially failed link, with an at-most-k constraint;
* the IGP's converged state as an order-encoded (unary) distance per node,
  constrained to be the min-plus fixed point of the link weights under the
  chosen failures;
* forwarding edges derived from the distances (ECMP) and overridden by
  static routes;
* the policy's *negation* (a forwarding loop exists / a source cannot reach
  an origin) so that SAT means "violation found" and UNSAT means the policy
  holds.

For iBGP-over-IGP reachability the verifier mirrors Minesweeper's behaviour
of instantiating an extra copy of the network per loopback address (the n+1
copies discussed in paper §3.2), which is what makes the problem blow up
quadratically.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.baselines.sat import CnfFormula, SatResult, SatSolver
from repro.config.objects import NetworkConfig
from repro.exceptions import SolverError
from repro.netaddr import Prefix
from repro.topology import Topology


@dataclass
class MinesweeperResult:
    """Outcome of one constraint-based verification query."""

    holds: bool
    elapsed_seconds: float
    variables: int
    clauses: int
    decisions: int
    counterexample_failed_links: Tuple[int, ...] = ()
    network_copies: int = 1


class _IgpEncoding:
    """Order-encoded IGP distances for one destination (one network copy)."""

    def __init__(
        self,
        formula: CnfFormula,
        topology: Topology,
        origins: Sequence[str],
        fail_vars: Dict[int, int],
        tag: str,
        max_distance: int,
        scale: int,
    ) -> None:
        self.formula = formula
        self.topology = topology
        self.origins = set(origins)
        self.fail_vars = fail_vars
        self.tag = tag
        self.max_distance = max_distance
        self.scale = scale
        # ge[node][k] is true when dist(node) >= k, for k in 1..max_distance.
        self.ge: Dict[str, List[int]] = {}
        self.fwd: Dict[Tuple[str, str], int] = {}
        self._encode()

    # ------------------------------------------------------------------ helpers
    def _ge(self, node: str, k: int) -> Optional[int]:
        """The literal for dist(node) >= k; None means the bound is trivial."""
        if k <= 0:
            return None  # always true
        if k > self.max_distance:
            # Distances are capped at max_distance ("unreachable"); >= k for
            # k beyond the cap is represented by the cap level itself.
            k = self.max_distance
        return self.ge[node][k - 1]

    def _weight(self, node: str, neighbor: str) -> int:
        link = self.topology.find_link(node, neighbor)
        return max(1, link.weight_from(node) // self.scale)

    def _encode(self) -> None:
        nodes = self.topology.nodes
        for node in nodes:
            self.ge[node] = [
                self.formula.new_variable(f"{self.tag}:ge:{node}:{k}")
                for k in range(1, self.max_distance + 1)
            ]
            # Monotonicity: dist >= k+1 implies dist >= k.
            for k in range(1, self.max_distance):
                self.formula.add_implication(self.ge[node][k], self.ge[node][k - 1])
        # Origins have distance 0.
        for origin in self.origins:
            if origin in self.ge:
                self.formula.add_clause((-self.ge[origin][0],))
        # Non-origins: dist(u) >= k  <->  every live neighbour v has
        # dist(v) >= k - w(u,v).  Both directions are encoded.
        for node in nodes:
            if node in self.origins:
                continue
            neighbors = [
                (link.other(node), link.link_id)
                for link in self.topology.edges(node)
            ]
            if not neighbors:
                # Isolated node: unreachable.
                self.formula.add_clause((self.ge[node][self.max_distance - 1],))
                continue
            for k in range(1, self.max_distance + 1):
                ge_uk = self._ge(node, k)
                assert ge_uk is not None
                # Direction 1: dist(u) >= k -> (failed(uv) or dist(v) >= k - w).
                for neighbor, link_id in neighbors:
                    weight = self._weight(node, neighbor)
                    ge_v = self._ge(neighbor, k - weight)
                    clause = [-ge_uk, self.fail_vars[link_id]]
                    if ge_v is not None:
                        clause.append(ge_v)
                        self.formula.add_clause(clause)
                    else:
                        # k - w <= 0: the neighbour bound is trivially true, so
                        # the implication holds without further constraint.
                        pass
                # Direction 2: dist(u) < k -> some live neighbour has
                # dist(v) <= k - w - 1 (i.e. not(dist(v) >= k - w)).
                support_literals: List[int] = []
                for neighbor, link_id in neighbors:
                    weight = self._weight(node, neighbor)
                    ge_v = self._ge(neighbor, k - weight)
                    aux = self.formula.new_variable(
                        f"{self.tag}:sup:{node}:{neighbor}:{k}"
                    )
                    # aux -> not failed and dist(v) < k - w
                    self.formula.add_clause((-aux, -self.fail_vars[link_id]))
                    if ge_v is not None:
                        self.formula.add_clause((-aux, -ge_v))
                    else:
                        # k - w <= 0 means dist(v) < k - w is impossible unless
                        # k - w >= 1; with k - w <= 0 the support cannot exist.
                        if k - weight <= 0:
                            self.formula.add_clause((-aux,))
                    support_literals.append(aux)
                self.formula.add_clause([ge_uk] + support_literals)

        # Forwarding: fwd(u, v) <-> not failed(uv) and dist(u) = dist(v) + w.
        for node in nodes:
            if node in self.origins:
                continue
            node_fwd_vars: List[int] = []
            for link in self.topology.edges(node):
                neighbor = link.other(node)
                weight = self._weight(node, neighbor)
                fwd_var = self.formula.new_variable(f"{self.tag}:fwd:{node}:{neighbor}")
                self.fwd[(node, neighbor)] = fwd_var
                node_fwd_vars.append(fwd_var)
                # fwd -> not failed
                self.formula.add_clause((-fwd_var, -self.fail_vars[link.link_id]))
                # fwd -> dist(u) reachable (dist(u) < max)
                self.formula.add_clause((-fwd_var, -self.ge[node][self.max_distance - 1]))
                # fwd -> dist(u) = dist(v) + w, split into the two inequalities.
                for k in range(1, self.max_distance + 1):
                    ge_uk = self._ge(node, k)
                    ge_v_low = self._ge(neighbor, k - weight)
                    # Upper bound: dist(u) >= k -> dist(v) >= k - w.
                    if ge_uk is not None and ge_v_low is not None:
                        self.formula.add_clause((-fwd_var, -ge_uk, ge_v_low))
                    # Lower bound: dist(v) >= k - w -> dist(u) >= k.
                    if ge_uk is not None:
                        if ge_v_low is not None:
                            self.formula.add_clause((-fwd_var, ge_uk, -ge_v_low))
                        elif k - weight <= 0:
                            # dist(v) >= k - w holds trivially, so forwarding
                            # over this link costs at least w: dist(u) >= k.
                            self.formula.add_clause((-fwd_var, ge_uk))
            # A reachable node installs at least one forwarding entry: the min
            # in the fixed point is achieved by some live neighbour, so the
            # ECMP set is non-empty whenever dist(u) < max.
            if node_fwd_vars:
                self.formula.add_clause(
                    [self.ge[node][self.max_distance - 1]] + node_fwd_vars
                )


class MinesweeperVerifier:
    """Constraint-based verification of OSPF/static networks under failures."""

    def __init__(
        self,
        network: NetworkConfig,
        max_failures: int = 0,
        max_distance: Optional[int] = None,
    ) -> None:
        self.network = network
        self.topology = network.topology
        self.max_failures = max_failures
        self.max_distance = max_distance

    # ------------------------------------------------------------------ encoding
    def _distance_bound(self) -> Tuple[int, int]:
        """(max unary distance levels, weight scale) for the encoding."""
        weights = [
            link.weight_ab for link in self.topology.links
        ] + [link.weight_ba for link in self.topology.links]
        scale = 0
        for weight in weights:
            scale = math.gcd(scale, weight)
        scale = max(1, scale)
        if self.max_distance is not None:
            return self.max_distance, scale
        # A safe bound: (number of nodes) * max scaled weight, capped to keep
        # the unary encoding manageable; workloads in the benchmarks stay well
        # under the cap.
        max_weight = max(1, max(weights) // scale) if weights else 1
        bound = min(len(self.topology) * max_weight, 64)
        return max(4, bound), scale

    def _base_formula(self) -> Tuple[CnfFormula, Dict[int, int]]:
        formula = CnfFormula()
        fail_vars: Dict[int, int] = {}
        for link in self.topology.links:
            fail_vars[link.link_id] = formula.new_variable(f"fail:{link.link_id}")
        if self.max_failures <= 0:
            for variable in fail_vars.values():
                formula.add_clause((-variable,))
        else:
            formula.add_at_most_k(list(fail_vars.values()), self.max_failures)
        return formula, fail_vars

    def _ospf_origins(self, prefix: Prefix) -> List[str]:
        origins = []
        for name, config in self.network.devices.items():
            if config.ospf is None:
                continue
            if any(p.contains_prefix(prefix) for p in config.ospf.networks):
                origins.append(name)
            elif config.ospf.redistribute_static and any(
                route.prefix.contains_prefix(prefix) for route in config.static_routes
            ):
                origins.append(name)
        return origins

    def _static_next_hops(self, prefix: Prefix) -> Dict[str, List[str]]:
        """Static next hops per device for the prefix (non-recursive only)."""
        result: Dict[str, List[str]] = {}
        for name, config in self.network.devices.items():
            hops = [
                route.next_hop_node
                for route in config.static_routes
                if route.prefix.contains_prefix(prefix) and route.next_hop_node is not None
            ]
            if hops:
                result[name] = hops
        return result

    def _forwarding_successors(
        self,
        formula: CnfFormula,
        encoding: _IgpEncoding,
        prefix: Prefix,
        fail_vars: Dict[int, int],
    ) -> Dict[str, List[Tuple[str, Optional[int]]]]:
        """Per-node forwarding successors: (neighbour, guard literal).

        A static route replaces the OSPF decision on its device (lower
        administrative distance); its guard is the negation of the link
        failure variable.  OSPF successors are guarded by the fwd variables
        of the encoding.
        """
        statics = self._static_next_hops(prefix)
        successors: Dict[str, List[Tuple[str, Optional[int]]]] = {}
        for node in self.topology.nodes:
            if node in statics:
                entries: List[Tuple[str, Optional[int]]] = []
                for neighbor in statics[node]:
                    links = self.topology.links_between(node, neighbor)
                    if not links:
                        continue
                    entries.append((neighbor, -fail_vars[links[0].link_id]))
                successors[node] = entries
            else:
                entries = []
                for (u, v), fwd_var in encoding.fwd.items():
                    if u == node:
                        entries.append((v, fwd_var))
                successors[node] = entries
        return successors

    # ------------------------------------------------------------------ queries
    def check_loop_freedom(self, prefix: Prefix) -> MinesweeperResult:
        """SAT iff some failure scenario yields a forwarding loop for ``prefix``."""
        started = time.perf_counter()
        formula, fail_vars = self._base_formula()
        bound, scale = self._distance_bound()
        origins = self._ospf_origins(prefix)
        encoding = _IgpEncoding(
            formula, self.topology, origins, fail_vars, f"igp:{prefix}", bound, scale
        )
        successors = self._forwarding_successors(formula, encoding, prefix, fail_vars)

        # trapped(u): u forwards and all of its used successors are trapped.
        trapped: Dict[str, int] = {
            node: formula.new_variable(f"trapped:{node}") for node in self.topology.nodes
        }
        origin_set = set(origins)
        for node, entries in successors.items():
            if node in origin_set:
                formula.add_clause((-trapped[node],))
                continue
            if not entries:
                formula.add_clause((-trapped[node],))
                continue
            # trapped(u) -> at least one active successor, and every active
            # successor is trapped.
            active_aux: List[int] = []
            for neighbor, guard in entries:
                aux = formula.new_variable(f"trapvia:{node}:{neighbor}")
                # aux -> guard and trapped(neighbor)
                if guard is not None:
                    formula.add_clause((-aux, guard))
                formula.add_clause((-aux, trapped[neighbor]))
                active_aux.append(aux)
                # trapped(u) and guard -> trapped(neighbor): every path out of
                # a trapped node stays trapped.
                if guard is not None:
                    formula.add_clause((-trapped[node], -guard, trapped[neighbor]))
                else:
                    formula.add_clause((-trapped[node], trapped[neighbor]))
            formula.add_clause([-trapped[node]] + active_aux)
        # A loop exists when some node is trapped.
        formula.add_clause([trapped[node] for node in self.topology.nodes])

        return self._solve(formula, fail_vars, started, network_copies=1)

    def check_reachability(self, prefix: Prefix, sources: Sequence[str]) -> MinesweeperResult:
        """SAT iff some failure scenario leaves a source unable to reach an origin."""
        started = time.perf_counter()
        formula, fail_vars = self._base_formula()
        bound, scale = self._distance_bound()
        origins = self._ospf_origins(prefix)
        encoding = _IgpEncoding(
            formula, self.topology, origins, fail_vars, f"igp:{prefix}", bound, scale
        )
        successors = self._forwarding_successors(formula, encoding, prefix, fail_vars)
        self._add_reachability_violation(formula, successors, origins, sources)
        return self._solve(formula, fail_vars, started, network_copies=1)

    def check_ibgp_reachability(
        self, prefix: Prefix, sources: Sequence[str]
    ) -> MinesweeperResult:
        """Reachability for an iBGP-announced prefix, Minesweeper style.

        Mirrors Minesweeper's handling of recursive routing: one extra copy of
        the IGP encoding per BGP speaker loopback (the n+1 network copies of
        paper §3.2), plus the reachability query for the destination routed
        via the egress speaker.
        """
        started = time.perf_counter()
        formula, fail_vars = self._base_formula()
        bound, scale = self._distance_bound()

        speakers = [
            name
            for name, config in self.network.devices.items()
            if config.bgp is not None
        ]
        copies = 0
        for speaker in speakers:
            loopback = self.topology.node(speaker).loopback
            if loopback is None:
                continue
            _IgpEncoding(
                formula,
                self.topology,
                [speaker],
                fail_vars,
                f"loopback:{speaker}",
                bound,
                scale,
            )
            copies += 1

        egresses = [
            name
            for name, config in self.network.devices.items()
            if config.bgp is not None
            and any(p.contains_prefix(prefix) for p in config.bgp.networks)
        ]
        encoding = _IgpEncoding(
            formula, self.topology, egresses, fail_vars, f"dest:{prefix}", bound, scale
        )
        successors = self._forwarding_successors(formula, encoding, prefix, fail_vars)
        self._add_reachability_violation(formula, successors, egresses, sources)
        return self._solve(formula, fail_vars, started, network_copies=copies + 1)

    # ------------------------------------------------------------------ internals
    def _add_reachability_violation(
        self,
        formula: CnfFormula,
        successors: Dict[str, List[Tuple[str, Optional[int]]]],
        origins: Sequence[str],
        sources: Sequence[str],
    ) -> None:
        reach: Dict[str, int] = {
            node: formula.new_variable(f"reach:{node}") for node in self.topology.nodes
        }
        for origin in origins:
            formula.add_clause((reach[origin],))
        for node, entries in successors.items():
            for neighbor, guard in entries:
                # forwarding to a reaching neighbour makes the node reaching.
                clause = [reach[node], -reach[neighbor]]
                if guard is not None:
                    clause.append(-guard)
                formula.add_clause(clause)
        for source in sources:
            formula.add_clause((-reach[source],))

    def _solve(
        self,
        formula: CnfFormula,
        fail_vars: Dict[int, int],
        started: float,
        network_copies: int,
    ) -> MinesweeperResult:
        solver = SatSolver(formula)
        result, model = solver.solve()
        elapsed = time.perf_counter() - started
        failed: Tuple[int, ...] = ()
        if result == SatResult.SAT and model is not None:
            failed = tuple(
                sorted(link_id for link_id, var in fail_vars.items() if model.get(var, False))
            )
        return MinesweeperResult(
            holds=result != SatResult.SAT,
            elapsed_seconds=elapsed,
            variables=formula.variable_count,
            clauses=formula.clause_count(),
            decisions=solver.statistics.decisions,
            counterexample_failed_links=failed,
            network_copies=network_copies,
        )
