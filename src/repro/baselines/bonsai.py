"""Bonsai-style control-plane compression.

Bonsai [Beckett et al., SIGCOMM'18] shrinks the network before verification by
collapsing devices with equivalent control-plane behaviour into abstract
nodes, producing a smaller topology on which any configuration verifier can
run (when the policy is preserved by the abstraction and no failures are being
checked).  Plankton both integrates with Bonsai as a preprocessor
(Figure 7(f)) and borrows its device-equivalence idea for the failure-choice
reduction of §4.3.

The compression here reuses the colour-refinement Device Equivalence Classes
from :mod:`repro.topology.failures` and builds:

* an abstract topology with one node per DEC and one link per Link
  Equivalence Class,
* an abstract configuration in which each abstract node originates the union
  of the prefixes its concrete members originate,
* a mapping in both directions so policies expressed on concrete devices can
  be translated to the abstract network and verdicts mapped back.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.config.objects import DeviceConfig, NetworkConfig, OspfConfig
from repro.exceptions import VerificationError
from repro.netaddr import Prefix
from repro.topology import Topology
from repro.topology.failures import DeviceEquivalence


@dataclass
class CompressedNetwork:
    """The result of Bonsai-style compression."""

    network: NetworkConfig
    #: concrete device -> abstract device name
    abstraction: Dict[str, str]
    #: abstract device name -> concrete members
    members: Dict[str, List[str]] = field(default_factory=dict)
    elapsed_seconds: float = 0.0

    @property
    def compression_ratio(self) -> float:
        """Concrete devices per abstract device (>= 1)."""
        concrete = len(self.abstraction)
        abstract = len(self.members)
        return concrete / abstract if abstract else 1.0

    def abstract_node(self, concrete: str) -> str:
        """The abstract node a concrete device maps to."""
        try:
            return self.abstraction[concrete]
        except KeyError:
            raise VerificationError(f"unknown device {concrete!r} in abstraction") from None

    def translate_nodes(self, nodes: Sequence[str]) -> List[str]:
        """Translate concrete node names into (deduplicated) abstract names."""
        seen: List[str] = []
        for node in nodes:
            abstract = self.abstract_node(node)
            if abstract not in seen:
                seen.append(abstract)
        return seen


class BonsaiCompressor:
    """Compress an OSPF/static network via device-equivalence classes."""

    def __init__(self, network: NetworkConfig) -> None:
        self.network = network

    def _relevant(self, prefix: Prefix, for_prefix: Optional[Prefix]) -> bool:
        """Whether an originated ``prefix`` matters for a sliced compression."""
        if for_prefix is None:
            return True
        return prefix.to_range().overlaps(for_prefix.to_range())

    def _origin_colors(self, for_prefix: Optional[Prefix] = None) -> Dict[str, object]:
        """Initial colours: the set of prefixes each device originates.

        With ``for_prefix`` given, only origination relevant to that
        destination is distinguished — Bonsai computes one abstraction per
        destination class, under which the (many) devices originating other,
        unrelated prefixes become interchangeable.
        """
        colors: Dict[str, object] = {}
        for name, config in self.network.devices.items():
            ospf_networks = (
                tuple(sorted(str(p) for p in config.ospf.networks if self._relevant(p, for_prefix)))
                if config.ospf
                else ()
            )
            bgp_networks = (
                tuple(sorted(str(p) for p in config.bgp.networks if self._relevant(p, for_prefix)))
                if config.bgp
                else ()
            )
            statics = tuple(
                sorted(
                    f"{r.prefix}->{r.next_hop_node or r.next_hop_ip}"
                    for r in config.static_routes
                    if self._relevant(r.prefix, for_prefix)
                )
            )
            colors[name] = (ospf_networks, bgp_networks, statics, config.ospf is not None)
        return colors

    def compress(
        self,
        keep_distinct: Sequence[str] = (),
        for_prefix: Optional[Prefix] = None,
    ) -> CompressedNetwork:
        """Build the abstract network.

        ``keep_distinct`` lists concrete devices that must stay in singleton
        classes (policy sources, waypoints), mirroring how the verification
        task constrains what Bonsai may merge.  ``for_prefix`` requests a
        destination-sliced abstraction: devices are distinguished only by
        behaviour relevant to that destination prefix, which is where
        Bonsai's compression on symmetric topologies actually comes from —
        without it every edge switch sits in a singleton class because it
        originates its own subnet.
        """
        started = time.perf_counter()
        colors = self._origin_colors(for_prefix)
        for index, name in enumerate(keep_distinct):
            colors[name] = (colors.get(name), "pinned", index)
        equivalence = DeviceEquivalence(self.network.topology, colors)
        members_by_class = equivalence.class_members()

        abstract_topology = Topology(f"{self.network.topology.name}-bonsai")
        abstract_name: Dict[int, str] = {}
        for class_id, members in sorted(members_by_class.items()):
            name = f"abs{class_id}_{members[0]}"
            abstract_name[class_id] = name
            representative = self.network.topology.node(members[0])
            abstract_topology.add_node(name, role=representative.role, members=tuple(members))

        # One abstract link per Link Equivalence Class.
        for (class_a, class_b, weight_ab, weight_ba), _link_ids in sorted(
            equivalence.link_classes().items()
        ):
            name_a = abstract_name[class_a]
            name_b = abstract_name[class_b]
            if name_a == name_b:
                continue  # intra-class links disappear in the abstraction
            if not abstract_topology.links_between(name_a, name_b):
                abstract_topology.add_link(name_a, name_b, weight=weight_ab, weight_ba=weight_ba)

        abstract_network = NetworkConfig(abstract_topology)
        abstraction: Dict[str, str] = {}
        members: Dict[str, List[str]] = {}
        for class_id, concrete_members in members_by_class.items():
            name = abstract_name[class_id]
            members[name] = list(concrete_members)
            for concrete in concrete_members:
                abstraction[concrete] = name
            representative_cfg = self.network.device(concrete_members[0])
            abstract_cfg = DeviceConfig(name=name)
            if representative_cfg.ospf is not None:
                # In a destination-sliced abstraction the representative's
                # irrelevant origins (its own subnets, say) are dropped: all
                # class members agree on the relevant set by construction.
                abstract_cfg.ospf = OspfConfig(
                    networks=[
                        p for p in representative_cfg.ospf.networks
                        if self._relevant(p, for_prefix)
                    ],
                    redistribute_static=representative_cfg.ospf.redistribute_static,
                )
            abstract_cfg.static_routes = []
            for route in representative_cfg.static_routes:
                if not self._relevant(route.prefix, for_prefix):
                    continue
                if route.next_hop_node is not None:
                    abstract_next_hop = abstraction.get(route.next_hop_node)
                    if abstract_next_hop is None:
                        # The next hop's class is named later; resolve afterwards.
                        abstract_next_hop = route.next_hop_node
                    abstract_cfg.static_routes.append(
                        type(route)(prefix=route.prefix, next_hop_node=abstract_next_hop)
                    )
            abstract_network.set_device(abstract_cfg)

        # Second pass: fix static next hops whose classes were named after use.
        for name, config in abstract_network.devices.items():
            fixed = []
            for route in config.static_routes:
                next_hop = route.next_hop_node
                if next_hop is not None and next_hop in abstraction:
                    route = type(route)(prefix=route.prefix, next_hop_node=abstraction[next_hop])
                fixed.append(route)
            config.static_routes = fixed

        return CompressedNetwork(
            network=abstract_network,
            abstraction=abstraction,
            members=members,
            elapsed_seconds=time.perf_counter() - started,
        )
