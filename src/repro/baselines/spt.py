"""The Figure 2 micro-benchmark: shortest paths by execution vs. by constraints.

The paper motivates explicit-state model checking with a small experiment:
single-source shortest paths computed (a) by executing the Bellman-Ford
algorithm inside a model checker, and (b) by encoding the solution as SMT
constraints and asking a solver.  Even with a deterministic program, the
"execute the algorithm" approach wins by orders of magnitude.

This module reproduces both sides:

* :func:`shortest_paths_by_execution` runs Bellman-Ford step by step through
  the same :class:`~repro.modelcheck.explorer.Explorer` used by the verifier
  (each relaxation round is one transition, so the model checker walks a
  deterministic chain of states, exactly the paper's setup);
* :func:`shortest_paths_by_constraints` encodes the distances with the unary
  order encoding over the DPLL SAT solver and reads the model back.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.baselines.sat import CnfFormula, SatResult, SatSolver
from repro.exceptions import SolverError
from repro.modelcheck.explorer import Explorer, ExplorerOptions
from repro.topology import Topology


@dataclass
class SptResult:
    """Distances plus the effort spent computing them."""

    distances: Dict[str, int]
    elapsed_seconds: float
    states_or_decisions: int


def shortest_paths_by_execution(topology: Topology, source: str) -> SptResult:
    """Bellman-Ford executed as a transition system inside the model checker."""
    started = time.perf_counter()
    nodes = topology.nodes
    unreachable = 1 << 30

    def initial() -> Tuple[Tuple[str, int], ...]:
        return tuple((n, 0 if n == source else unreachable) for n in nodes)

    def successors(state: Tuple[Tuple[str, int], ...]):
        distances = dict(state)
        changed = False
        updated = dict(distances)
        for link in topology.links:
            for a, b in ((link.a, link.b), (link.b, link.a)):
                weight = link.weight_from(a)
                if distances[a] + weight < updated[b]:
                    updated[b] = distances[a] + weight
                    changed = True
        if not changed:
            return []
        return [("relax-round", tuple(sorted(updated.items())))]

    explorer = Explorer(successors=successors, options=ExplorerOptions(max_states=len(nodes) + 2))
    outcome = explorer.run(initial(), collect_converged=True)
    final = dict(outcome.converged_states[0]) if outcome.converged_states else dict(initial())
    distances = {n: d for n, d in final.items() if d < unreachable}
    return SptResult(
        distances=distances,
        elapsed_seconds=time.perf_counter() - started,
        states_or_decisions=outcome.statistics.states_expanded,
    )


def shortest_paths_by_constraints(
    topology: Topology,
    source: str,
    max_distance: Optional[int] = None,
) -> SptResult:
    """Shortest paths obtained by constraint solving (the SMT-style baseline).

    Link weights are normalised by their gcd before encoding (the returned
    distances are in normalised units), which keeps the unary order encoding
    as small as the topology allows — the generic search is still orders of
    magnitude slower than executing the algorithm, which is the point of the
    comparison.
    """
    started = time.perf_counter()
    import math

    scale = 0
    for link in topology.links:
        scale = math.gcd(scale, link.weight_ab)
        scale = math.gcd(scale, link.weight_ba)
    scale = max(1, scale)
    if max_distance is None:
        # Hop bound times the maximum (normalised) weight, capped to keep the
        # unary encoding finite; the benchmark topologies stay under the cap.
        max_weight = max((l.weight_ab // scale for l in topology.links), default=1)
        max_distance = min(len(topology) * max_weight, 64)

    formula = CnfFormula()
    ge: Dict[str, List[int]] = {}
    for node in topology.nodes:
        ge[node] = [formula.new_variable(f"ge:{node}:{k}") for k in range(1, max_distance + 1)]
        for k in range(1, max_distance):
            formula.add_implication(ge[node][k], ge[node][k - 1])
    formula.add_clause((-ge[source][0],))

    def ge_lit(node: str, k: int) -> Optional[int]:
        if k <= 0:
            return None
        k = min(k, max_distance)
        return ge[node][k - 1]

    for node in topology.nodes:
        if node == source:
            continue
        neighbors = [
            (l.other(node), max(1, l.weight_from(node) // scale))
            for l in topology.edges(node)
        ]
        if not neighbors:
            formula.add_clause((ge[node][max_distance - 1],))
            continue
        for k in range(1, max_distance + 1):
            upper = ge_lit(node, k)
            assert upper is not None
            # dist(node) >= k -> every neighbour has dist >= k - w.
            for neighbor, weight in neighbors:
                lower = ge_lit(neighbor, k - weight)
                if lower is not None:
                    formula.add_clause((-upper, lower))
            # dist(node) < k -> some neighbour has dist < k - w.
            support = []
            for neighbor, weight in neighbors:
                lower = ge_lit(neighbor, k - weight)
                aux = formula.new_variable(f"sup:{node}:{neighbor}:{k}")
                if lower is not None:
                    formula.add_clause((-aux, -lower))
                elif k - weight <= 0:
                    pass  # dist(neighbor) < k - w is trivially satisfied at 0
                support.append(aux)
            formula.add_clause([upper] + support)

    solver = SatSolver(formula)
    result, model = solver.solve()
    if result != SatResult.SAT or model is None:
        raise SolverError("shortest-path constraint encoding unexpectedly unsatisfiable")
    distances: Dict[str, int] = {}
    for node in topology.nodes:
        value = 0
        for k in range(1, max_distance + 1):
            if model.get(ge[node][k - 1], False):
                value = k
            else:
                break
        if value < max_distance:
            distances[node] = value
    return SptResult(
        distances=distances,
        elapsed_seconds=time.perf_counter() - started,
        states_or_decisions=solver.statistics.decisions,
    )
