"""A Batfish-style single-execution control-plane simulator.

Simulation-based configuration analysis "executes the system only along a
single non-deterministic path, and can hence miss violations in networks that
have multiple stable convergences" (paper §2).  This baseline does exactly
that: for every relevant PEC it runs one SPVP execution (with a seeded
message order), builds the resulting data plane with the same FIB model the
verifier uses, and checks the policy on that single converged state.

Its purpose in the reproduction is the Figure 1 feature-matrix tests: on BGP
configurations with multiple stable states (wedgies, the data-center waypoint
misconfiguration) the simulator reports "holds" while Plankton finds the
violating convergence.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.config.objects import NetworkConfig
from repro.core.network_model import DependencyContext, PecExplorer
from repro.core.options import PlanktonOptions
from repro.pec.classes import PacketEquivalenceClass, compute_pecs
from repro.policies.base import Policy, PolicyCheckContext
from repro.protocols.rpvp import RpvpState
from repro.protocols.spvp import SpvpSimulator
from repro.topology.failures import FailureScenario


@dataclass
class SimulationResult:
    """Outcome of a single-execution (simulation) check."""

    holds: bool
    elapsed_seconds: float
    pecs_checked: int
    violations: List[str] = field(default_factory=list)


class SimulationVerifier:
    """Single-path simulation of the control plane + policy check."""

    def __init__(self, network: NetworkConfig, seed: int = 0) -> None:
        self.network = network
        self.seed = seed
        self.pecs = compute_pecs(network)

    def check(
        self,
        policies: Union[Policy, Sequence[Policy]],
        failure: Optional[FailureScenario] = None,
    ) -> SimulationResult:
        """Simulate one convergence per PEC and check the policies on it."""
        started = time.perf_counter()
        policy_list = [policies] if isinstance(policies, Policy) else list(policies)
        failure = failure or FailureScenario()
        options = PlanktonOptions()
        violations: List[str] = []
        checked = 0

        for pec in self.pecs:
            if not any(policy.applies_to(pec) for policy in policy_list):
                continue
            checked += 1
            explorer = PecExplorer(
                self.network, pec, failure, options, dependency_context=DependencyContext()
            )
            bgp_states: Dict = {}
            for prefix, devices in pec.bgp_origins:
                if not devices:
                    continue
                instance = explorer.bgp_instance(prefix)
                # One seeded SPVP execution over the persistent state/stepper
                # core; the RNG consumes the canonical pending-channel order,
                # so seeded runs pick the same interleaving the original
                # dict-based simulator did.
                bgp_states[prefix] = SpvpSimulator(instance, seed=self.seed).run()
            data_plane, control_plane = explorer.build_data_plane(bgp_states)
            for policy in policy_list:
                if not policy.applies_to(pec):
                    continue
                context = PolicyCheckContext(
                    network=self.network,
                    pec=pec,
                    data_plane=data_plane,
                    failure=failure,
                    control_plane=control_plane,
                )
                message = policy.check(context)
                if message is not None:
                    violations.append(f"[{policy.name}] {message}")

        return SimulationResult(
            holds=not violations,
            elapsed_seconds=time.perf_counter() - started,
            pecs_checked=checked,
            violations=violations,
        )
