"""Exception hierarchy for the Plankton reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch any failure originating in this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class AddressError(ReproError, ValueError):
    """An IPv4 address or prefix string/value could not be interpreted."""


class TopologyError(ReproError):
    """The topology is malformed or an operation refers to unknown elements."""


class ConfigError(ReproError):
    """A device configuration is inconsistent or cannot be parsed."""


class ConfigParseError(ConfigError):
    """Raised by the configuration DSL parser with line information."""

    def __init__(self, message: str, line_number: int | None = None) -> None:
        self.line_number = line_number
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)


class ProtocolError(ReproError):
    """A protocol model was given an invalid input or reached a bad state."""


class VerificationError(ReproError):
    """The verifier could not complete (as opposed to finding a violation)."""


class SchedulingError(ReproError):
    """Dependency-aware scheduling failed (e.g. unexpected cyclic structure)."""


class PolicyError(ReproError):
    """A policy was configured incorrectly (unknown nodes, bad parameters)."""


class SolverError(ReproError):
    """The SAT solver or an encoding built on it was used incorrectly."""


class SearchBudgetExceeded(VerificationError):
    """An exploration exceeded its configured state or time budget."""

    def __init__(self, message: str, states_explored: int = 0) -> None:
        super().__init__(message)
        self.states_explored = states_explored
