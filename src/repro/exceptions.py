"""Exception hierarchy for the Plankton reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch any failure originating in this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class AddressError(ReproError, ValueError):
    """An IPv4 address or prefix string/value could not be interpreted."""


class TopologyError(ReproError):
    """The topology is malformed or an operation refers to unknown elements."""


class ConfigError(ReproError):
    """A device configuration is inconsistent or cannot be parsed."""


class ConfigParseError(ConfigError):
    """Raised by the configuration DSL parser with line information."""

    def __init__(self, message: str, line_number: int | None = None) -> None:
        self.line_number = line_number
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)


class ProtocolError(ReproError):
    """A protocol model was given an invalid input or reached a bad state."""


class VerificationError(ReproError):
    """The verifier could not complete (as opposed to finding a violation)."""


class SchedulingError(ReproError):
    """Dependency-aware scheduling failed (e.g. unexpected cyclic structure)."""


class PolicyError(ReproError):
    """A policy was configured incorrectly (unknown nodes, bad parameters)."""


class SolverError(ReproError):
    """The SAT solver or an encoding built on it was used incorrectly."""


class SpecError(ReproError):
    """A wire-format request spec (policy/options/scenario dict) is invalid.

    Raised by :mod:`repro.serve.specs` when a verification request arriving
    over the service API (or built by the CLI for the ``--server`` path)
    names unknown policies, devices, or option values.  Maps to HTTP 400 on
    the server and to a failed job with a clear message on the client.
    """


class ServiceError(ReproError):
    """Base class for verification-service (client/server) failures."""


class ServiceUnavailable(ServiceError):
    """The verification server could not be reached at all (connection
    refused, DNS failure, timeout before any HTTP response)."""


class ServerProtocolError(ServiceError):
    """The server answered, but unusably: an HTTP 5xx, or a response body
    that is not the JSON document the API promises."""


class SearchBudgetExceeded(VerificationError):
    """An exploration exceeded its configured state or time budget."""

    def __init__(self, message: str, states_explored: int = 0) -> None:
        super().__init__(message)
        self.states_explored = states_explored
