"""The Plankton verifier facade.

:class:`Plankton` ties the whole pipeline together (paper Figure 3):

1. compute Packet Equivalence Classes from the configuration,
2. build the PEC dependency graph and a dependency-aware schedule,
3. for every failure scenario allowed by the environment specification,
   explore every converged data plane of every relevant PEC with the
   explicit-state model checker (RPVP + the §4 optimizations),
4. invoke the policy callback on each converged state; report the first (or
   all) violations with an event trail.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.config.objects import NetworkConfig
from repro.core.network_model import ConvergedOutcome, DependencyContext, PecExplorer
from repro.core.options import PlanktonOptions
from repro.core.results import PecRunResult, VerificationResult, Violation
from repro.core.scheduler import dependency_closure, restrict_schedule, run_tasks
from repro.exceptions import VerificationError
from repro.modelcheck.trail import Trail
from repro.pec.classes import PacketEquivalenceClass, compute_pecs
from repro.pec.dependencies import PecDependencyGraph, build_dependency_graph
from repro.policies.base import Policy, PolicyCheckContext
from repro.protocols.ospf import OspfComputation
from repro.topology.failures import (
    FailureScenario,
    enumerate_failure_scenarios,
    reduced_failure_scenarios,
)


class Plankton:
    """The configuration verifier.

    Typical use::

        plankton = Plankton(network, PlanktonOptions(max_failures=1))
        result = plankton.verify(Reachability(sources=["edge0_0"]))
        assert result.holds, result.first_violation().render()
    """

    def __init__(self, network: NetworkConfig, options: Optional[PlanktonOptions] = None) -> None:
        self.network = network
        self.options = options or PlanktonOptions()
        self.pecs: List[PacketEquivalenceClass] = compute_pecs(network)
        self.dependency_graph: PecDependencyGraph = build_dependency_graph(network, self.pecs)
        self.ospf_computation = OspfComputation(network)
        self._pec_by_index = {pec.index: pec for pec in self.pecs}

    # ------------------------------------------------------------------ public API
    def verify(self, policies: Union[Policy, Sequence[Policy]]) -> VerificationResult:
        """Verify the configuration against one policy or a list of policies."""
        policy_list = [policies] if isinstance(policies, Policy) else list(policies)
        if not policy_list:
            raise VerificationError("at least one policy is required")
        result = VerificationResult(policy_names=[p.name for p in policy_list])
        started = time.perf_counter()

        relevant = [pec for pec in self.pecs if any(p.applies_to(pec) for p in policy_list)]
        result.pecs_analyzed = len(relevant)
        if not relevant:
            result.elapsed_seconds = time.perf_counter() - started
            return result

        needed = dependency_closure(self.dependency_graph, (pec.index for pec in relevant))
        has_dependencies = any(
            self.dependency_graph.dependencies_of(index) & needed for index in needed
        )

        if has_dependencies:
            self._verify_with_dependencies(policy_list, relevant, needed, result)
        else:
            self._verify_independent(policy_list, relevant, result)

        result.elapsed_seconds = time.perf_counter() - started
        return result

    # ------------------------------------------------------------------ independent PECs
    def _verify_independent(
        self,
        policies: List[Policy],
        relevant: List[PacketEquivalenceClass],
        result: VerificationResult,
    ) -> None:
        """Fast path: every PEC is analysed in isolation (paper's common case)."""
        tasks: List[Tuple[PacketEquivalenceClass, FailureScenario]] = []
        scenario_count = 0
        for pec in relevant:
            scenarios = self._failure_scenarios_for(pec, policies)
            scenario_count = max(scenario_count, len(scenarios))
            for failure in scenarios:
                tasks.append((pec, failure))
        result.failure_scenarios = scenario_count

        if self.options.cores > 1 and not self.options.stop_at_first_violation:
            worker = _IndependentTaskWorker(self.network, self.options, policies)
            runs = run_tasks(tasks, worker, cores=self.options.cores)
            for run in runs:
                result.record(run)
            return

        for pec, failure in tasks:
            run, _outcomes = self._run_pec(pec, failure, policies, DependencyContext(), False)
            result.record(run)
            if run.violations and self.options.stop_at_first_violation:
                return

    # ------------------------------------------------------------------ dependent PECs
    def _verify_with_dependencies(
        self,
        policies: List[Policy],
        relevant: List[PacketEquivalenceClass],
        needed: Set[int],
        result: VerificationResult,
    ) -> None:
        """Dependency-aware scheduling: upstream SCCs first, their converged
        states materialised for downstream PECs; topology changes are matched
        across the explorations of different PECs (paper §3.2)."""
        relevant_indices = {pec.index for pec in relevant}
        schedule = restrict_schedule(self.dependency_graph, needed)
        scenarios = enumerate_failure_scenarios(self.network.topology, self.options.max_failures)
        result.failure_scenarios = len(scenarios)

        for failure in scenarios:
            outcomes_by_pec: Dict[int, List[ConvergedOutcome]] = {}
            for scc in schedule:
                for index in scc:
                    pec = self._pec_by_index[index]
                    check_policies = policies if index in relevant_indices else []
                    has_dependents = bool(
                        self.dependency_graph.dependents_of(index) & needed
                    )
                    dependency_indices = sorted(
                        self.dependency_graph.dependencies_of(index) & needed - {index}
                    )
                    combos = self._dependency_combinations(dependency_indices, outcomes_by_pec)
                    collected: List[ConvergedOutcome] = []
                    for combo in combos:
                        context = DependencyContext()
                        for upstream_index, outcome in combo:
                            context.add(self._pec_by_index[upstream_index], outcome.data_plane)
                        run, outcomes = self._run_pec(
                            pec, failure, check_policies, context, collect_outcomes=has_dependents
                        )
                        result.record(run)
                        collected.extend(outcomes)
                        if run.violations and self.options.stop_at_first_violation:
                            return
                    outcomes_by_pec[index] = collected

    @staticmethod
    def _dependency_combinations(
        dependency_indices: Sequence[int],
        outcomes_by_pec: Dict[int, List[ConvergedOutcome]],
    ) -> List[List[Tuple[int, ConvergedOutcome]]]:
        """Cross product of upstream converged outcomes (usually a single one)."""
        pools: List[List[Tuple[int, ConvergedOutcome]]] = []
        for index in dependency_indices:
            outcomes = outcomes_by_pec.get(index, [])
            if outcomes:
                pools.append([(index, outcome) for outcome in outcomes])
        if not pools:
            return [[]]
        return [list(combo) for combo in itertools.product(*pools)]

    # ------------------------------------------------------------------ single PEC run
    def _failure_scenarios_for(
        self, pec: PacketEquivalenceClass, policies: List[Policy]
    ) -> List[FailureScenario]:
        """Failure scenarios for an independently analysed PEC (§4.1.4, §4.3)."""
        if self.options.max_failures <= 0:
            return [FailureScenario()]
        flags = self.options.optimizations
        if not flags.failure_equivalence:
            return enumerate_failure_scenarios(self.network.topology, self.options.max_failures)
        colors: Dict[str, object] = {}
        for name in self.network.topology.nodes:
            colors[name] = (
                tuple(sorted(str(p) for p, devs in pec.ospf_origins if name in devs)),
                tuple(sorted(str(p) for p, devs in pec.bgp_origins if name in devs)),
                tuple(sorted(str(p) for p, devs in pec.static_devices if name in devs)),
            )
        interesting: Set[str] = set()
        for policy in policies:
            nodes = policy.interesting_nodes(pec)
            if nodes:
                interesting.update(nodes)
            sources = policy.source_nodes(pec)
            if sources:
                interesting.update(sources)
        return reduced_failure_scenarios(
            self.network.topology,
            self.options.max_failures,
            colors=colors,
            interesting_nodes=sorted(interesting),
        )

    def _policy_sources(
        self, pec: PacketEquivalenceClass, policies: List[Policy], has_dependents: bool
    ) -> Optional[List[str]]:
        """Union of policy source nodes, when usable for pruning (§4.2)."""
        if not self.options.optimizations.policy_based_pruning:
            return None
        if has_dependents:
            # Not sound for PECs on which other PECs depend (§4.2).
            return None
        if not policies:
            return None
        sources: Set[str] = set()
        for policy in policies:
            declared = policy.source_nodes(pec)
            if declared is None:
                return None
            sources.update(declared)
        return sorted(sources)

    def _run_pec(
        self,
        pec: PacketEquivalenceClass,
        failure: FailureScenario,
        policies: List[Policy],
        dependency_context: DependencyContext,
        collect_outcomes: bool,
    ) -> Tuple[PecRunResult, List[ConvergedOutcome]]:
        """Explore one PEC under one failure scenario and check the policies."""
        has_dependents = collect_outcomes
        sources = self._policy_sources(pec, policies, has_dependents)
        explorer = PecExplorer(
            self.network,
            pec,
            failure,
            self.options,
            policy_sources=sources,
            dependency_context=dependency_context,
            ospf_computation=self.ospf_computation,
        )
        run = PecRunResult(pec_index=pec.index, failure=failure)
        seen_signatures: Dict[str, Set[Tuple]] = {}
        failure_text = failure.describe(self.network.topology)

        def check_outcome(outcome: ConvergedOutcome) -> Optional[str]:
            """Check every policy on one converged data plane; returns the first
            violation message (which also stops a streaming search)."""
            run.converged_states += 1
            if self.options.keep_data_planes:
                run.data_planes.append(outcome.data_plane)
            first_message: Optional[str] = None
            for policy in policies:
                if not policy.applies_to(pec):
                    continue
                context = PolicyCheckContext(
                    network=self.network,
                    pec=pec,
                    data_plane=outcome.data_plane,
                    failure=failure,
                    dependencies=dependency_context.data_planes(),
                    control_plane=outcome.control_plane,
                )
                if self.options.optimizations.policy_based_pruning:
                    signature = policy.state_signature(context)
                    if signature is not None:
                        bucket = seen_signatures.setdefault(policy.name, set())
                        if signature in bucket:
                            run.suppressed_states += 1
                            continue
                        bucket.add(signature)
                run.checked_states += 1
                message = policy.check(context)
                if message is None:
                    continue
                trail = Trail(policy=policy.name, pec_description=pec.describe())
                trail.add("failure", failure_text)
                for step in outcome.steps:
                    description = step.describe() if hasattr(step, "describe") else str(step)
                    trail.add("rpvp-step", description)
                trail.violation_description = message
                trail.data_plane_dump = outcome.data_plane.describe()
                run.violations.append(
                    Violation(
                        policy=policy.name,
                        pec_index=pec.index,
                        pec_description=str(pec.address_range),
                        failure_description=failure_text,
                        message=message,
                        trail=trail,
                    )
                )
                if first_message is None:
                    first_message = message
                if self.options.stop_at_first_violation:
                    return message
            return first_message if self.options.stop_at_first_violation else None

        if collect_outcomes:
            # Downstream PECs need every converged outcome of this one, so run
            # the batch exploration and check the policies afterwards.
            outcomes = explorer.explore()
            run.statistics = explorer.statistics
            run.converged_states = 0
            for outcome in outcomes:
                message = check_outcome(outcome)
                if message is not None and self.options.stop_at_first_violation:
                    return run, outcomes
            return run, outcomes

        # Independent PEC: stream the policy check through the model checker so
        # the search stops at the first violating converged state.
        outcomes = explorer.explore(on_outcome=check_outcome, keep_outcomes=False)
        run.statistics = explorer.statistics
        return run, outcomes


class _IndependentTaskWorker:
    """Picklable worker used for the parallel independent-PEC path."""

    def __init__(self, network: NetworkConfig, options: PlanktonOptions, policies: List[Policy]) -> None:
        self.network = network
        self.options = options
        self.policies = policies

    def __call__(self, task: Tuple[PacketEquivalenceClass, FailureScenario]) -> PecRunResult:
        pec, failure = task
        verifier = Plankton(self.network, self.options)
        run, _outcomes = verifier._run_pec(pec, failure, self.policies, DependencyContext(), False)
        return run


def verify(
    network: NetworkConfig,
    policies: Union[Policy, Sequence[Policy]],
    options: Optional[PlanktonOptions] = None,
) -> VerificationResult:
    """One-shot convenience wrapper around :class:`Plankton`."""
    return Plankton(network, options).verify(policies)
