"""The Plankton verifier facade.

:class:`Plankton` ties the whole pipeline together (paper Figure 3):

1. compute Packet Equivalence Classes from the configuration,
2. build the PEC dependency graph and a dependency-aware schedule,
3. expand every (PEC, failure scenario) pair into the execution engine's
   task graph (:mod:`repro.engine`) — with explicit dependency edges when
   PECs depend on each other — and run it on the configured backend
   (serial, or a persistent process pool),
4. invoke the policy callback on each converged state; report the first (or
   all) violations with an event trail.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.config.objects import NetworkConfig
from repro.core.network_model import ConvergedOutcome, DependencyContext, PecExplorer
from repro.core.options import PlanktonOptions
from repro.core.results import PecRunResult, VerificationResult, Violation
from repro.exceptions import VerificationError
from repro.modelcheck.trail import Trail
from repro.pec.classes import PacketEquivalenceClass, compute_pecs
from repro.pec.dependencies import PecDependencyGraph, build_dependency_graph
from repro.policies.base import Policy, PolicyCheckContext
from repro.protocols.ospf import OspfComputation
from repro.topology.failures import FailureScenario


class Plankton:
    """The configuration verifier.

    Typical use::

        plankton = Plankton(network, PlanktonOptions(max_failures=1))
        result = plankton.verify(Reachability(sources=["edge0_0"]))
        assert result.holds, result.first_violation().render()
    """

    def __init__(self, network: NetworkConfig, options: Optional[PlanktonOptions] = None) -> None:
        self.network = network
        self.options = options or PlanktonOptions()
        self.pecs: List[PacketEquivalenceClass] = compute_pecs(network)
        self.dependency_graph: PecDependencyGraph = build_dependency_graph(network, self.pecs)
        self.ospf_computation = OspfComputation(network)
        self._pec_by_index = {pec.index: pec for pec in self.pecs}

    def pec_by_index(self, index: int) -> PacketEquivalenceClass:
        """The PEC with partition index ``index``."""
        return self._pec_by_index[index]

    # ------------------------------------------------------------------ public API
    def expand_request(
        self, policies: Union[Policy, Sequence[Policy]]
    ) -> Tuple[List[Policy], List[PacketEquivalenceClass], "object"]:
        """Normalise a verification request into (policies, relevant PECs, graph).

        The shared prologue of :meth:`verify` and the incremental service's
        re-verification: the policy list is validated, the PECs at least one
        policy applies to are selected, and the request is expanded into the
        execution engine's task graph (empty when nothing is relevant).
        """
        from repro.engine import build_task_graph
        from repro.engine.graph import TaskGraph

        policy_list = [policies] if isinstance(policies, Policy) else list(policies)
        if not policy_list:
            raise VerificationError("at least one policy is required")
        relevant = [pec for pec in self.pecs if any(p.applies_to(pec) for p in policy_list)]
        if not relevant:
            return policy_list, relevant, TaskGraph()
        graph = build_task_graph(
            self.network,
            self.pecs,
            self.dependency_graph,
            policy_list,
            self.options,
            relevant,
        )
        return policy_list, relevant, graph

    def verify(self, policies: Union[Policy, Sequence[Policy]]) -> VerificationResult:
        """Verify the configuration against one policy or a list of policies.

        All work — independent and dependent PECs alike — is expanded into
        the execution engine's task graph and run on the backend selected by
        :attr:`PlanktonOptions.backend` / :attr:`PlanktonOptions.cores`.
        """
        from repro.engine import EngineContext, ResultAggregator, select_backend

        started = time.perf_counter()
        policy_list, relevant, graph = self.expand_request(policies)
        result = VerificationResult(policy_names=[p.name for p in policy_list])
        result.pecs_analyzed = len(relevant)
        if not relevant:
            result.elapsed_seconds = time.perf_counter() - started
            return result
        result.failure_scenarios = graph.failure_scenarios

        aggregator = ResultAggregator(graph, self.options, result.policy_names)
        backend = select_backend(self.options, graph)
        backend.execute(graph, EngineContext(plankton=self, policies=policy_list), aggregator)
        aggregator.finalize(result)

        result.elapsed_seconds = time.perf_counter() - started
        return result

    # ------------------------------------------------------------------ single PEC run
    def _policy_sources(
        self, pec: PacketEquivalenceClass, policies: List[Policy], has_dependents: bool
    ) -> Optional[List[str]]:
        """Union of policy source nodes, when usable for pruning (§4.2)."""
        if not self.options.optimizations.policy_based_pruning:
            return None
        if has_dependents:
            # Not sound for PECs on which other PECs depend (§4.2).
            return None
        if not policies:
            return None
        sources: Set[str] = set()
        for policy in policies:
            declared = policy.source_nodes(pec)
            if declared is None:
                return None
            sources.update(declared)
        return sorted(sources)

    def run_pec(
        self,
        pec: PacketEquivalenceClass,
        failure: FailureScenario,
        policies: List[Policy],
        dependency_context: DependencyContext,
        collect_outcomes: bool,
    ) -> Tuple[PecRunResult, List[ConvergedOutcome]]:
        """Explore one PEC under one failure scenario and check the policies.

        This is the engine's unit of work (one task-graph node executes it
        once per upstream-outcome combination); it can also be called
        directly for one-off explorations.
        """
        has_dependents = collect_outcomes
        sources = self._policy_sources(pec, policies, has_dependents)
        explorer = PecExplorer(
            self.network,
            pec,
            failure,
            self.options,
            policy_sources=sources,
            dependency_context=dependency_context,
            ospf_computation=self.ospf_computation,
        )
        run = PecRunResult(pec_index=pec.index, failure=failure)
        seen_signatures: Dict[str, Set[Tuple]] = {}
        failure_text = failure.describe(self.network.topology)

        def check_outcome(outcome: ConvergedOutcome) -> Optional[str]:
            """Check every policy on one converged data plane; returns the first
            violation message (which also stops a streaming search)."""
            run.converged_states += 1
            if self.options.keep_data_planes:
                run.data_planes.append(outcome.data_plane)
            first_message: Optional[str] = None
            for policy in policies:
                if not policy.applies_to(pec):
                    continue
                context = PolicyCheckContext(
                    network=self.network,
                    pec=pec,
                    data_plane=outcome.data_plane,
                    failure=failure,
                    dependencies=dependency_context.data_planes(),
                    control_plane=outcome.control_plane,
                )
                if self.options.optimizations.policy_based_pruning:
                    signature = policy.state_signature(context)
                    if signature is not None:
                        bucket = seen_signatures.setdefault(policy.name, set())
                        if signature in bucket:
                            run.suppressed_states += 1
                            continue
                        bucket.add(signature)
                run.checked_states += 1
                message = policy.check(context)
                if message is None:
                    continue
                trail = Trail(policy=policy.name, pec_description=pec.describe())
                trail.add("failure", failure_text)
                for step in outcome.steps:
                    description = step.describe() if hasattr(step, "describe") else str(step)
                    trail.add("rpvp-step", description)
                trail.violation_description = message
                trail.data_plane_dump = outcome.data_plane.describe()
                run.violations.append(
                    Violation(
                        policy=policy.name,
                        pec_index=pec.index,
                        pec_description=str(pec.address_range),
                        failure_description=failure_text,
                        message=message,
                        trail=trail,
                    )
                )
                if first_message is None:
                    first_message = message
                if self.options.stop_at_first_violation:
                    return message
            return first_message if self.options.stop_at_first_violation else None

        if collect_outcomes:
            # Downstream PECs need every converged outcome of this one, so run
            # the batch exploration and check the policies afterwards.
            outcomes = explorer.explore()
            run.statistics = explorer.statistics
            run.converged_states = 0
            for outcome in outcomes:
                message = check_outcome(outcome)
                if message is not None and self.options.stop_at_first_violation:
                    return run, outcomes
            return run, outcomes

        # Independent PEC: stream the policy check through the model checker so
        # the search stops at the first violating converged state.
        outcomes = explorer.explore(on_outcome=check_outcome, keep_outcomes=False)
        run.statistics = explorer.statistics
        return run, outcomes

    # Backwards-compatible alias (pre-engine internal name).
    _run_pec = run_pec


def verify(
    network: NetworkConfig,
    policies: Union[Policy, Sequence[Policy]],
    options: Optional[PlanktonOptions] = None,
) -> VerificationResult:
    """One-shot convenience wrapper around :class:`Plankton`."""
    return Plankton(network, options).verify(policies)
