"""Verifier options and optimization flags.

Every optimization of paper §4 can be toggled individually so the Figure 8
ablation experiments (and curious users) can measure its effect.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional


@dataclass(frozen=True)
class OptimizationFlags:
    """Switches for the §4 optimizations.

    Attributes:
        consistent_execution: §4.1.1 — explore only executions where a node
            never changes a selected best path.
        deterministic_nodes: §4.1.2 — when a node has a guaranteed winning
            update, execute it without branching over other enabled nodes.
        decision_independence: §4.1.3 — when groups of undecided nodes cannot
            influence each other, fix an arbitrary order between the groups.
        failure_ordering: §4.1.4 — apply failures before protocol execution
            and in one canonical order only (always on in this reproduction;
            the flag is kept for reporting).
        policy_based_pruning: §4.2 — stop an execution once every policy
            source node has decided, and skip converged states whose
            policy-visible signature was already checked.
        failure_equivalence: §4.3 — only fail one representative link per
            Link Equivalence Class (Bonsai-style DEC/LEC reduction).
        state_hashing: §4.4 — intern per-node routing entries and represent
            visited states as tuples of entry ids.
        bitstate_hashing: §5/Figure 9 — track visited states in a Bloom
            filter instead of an exact set (reduced coverage, less memory).
    """

    consistent_execution: bool = True
    deterministic_nodes: bool = True
    decision_independence: bool = True
    failure_ordering: bool = True
    policy_based_pruning: bool = True
    failure_equivalence: bool = True
    state_hashing: bool = True
    bitstate_hashing: bool = False

    @staticmethod
    def all_enabled() -> "OptimizationFlags":
        """Every optimization on (the paper's default configuration)."""
        return OptimizationFlags()

    @staticmethod
    def none_enabled() -> "OptimizationFlags":
        """Naive model checking (the Figure 8 'None' rows)."""
        return OptimizationFlags(
            consistent_execution=False,
            deterministic_nodes=False,
            decision_independence=False,
            failure_ordering=True,
            policy_based_pruning=False,
            failure_equivalence=False,
            state_hashing=False,
            bitstate_hashing=False,
        )

    def without(self, **disabled: bool) -> "OptimizationFlags":
        """A copy with the named optimizations turned off.

        Example: ``flags.without(deterministic_nodes=True)`` disables the
        deterministic-node detection, keeping everything else.
        """
        updates = {name: False for name, value in disabled.items() if value}
        return replace(self, **updates)


@dataclass
class PlanktonOptions:
    """Top-level verifier options."""

    #: Maximum number of simultaneous link failures to consider (the
    #: environment specification of §2).
    max_failures: int = 0
    #: Optimization switches.
    optimizations: OptimizationFlags = field(default_factory=OptimizationFlags)
    #: Worker processes for PEC runs (1 = serial).  The analyses of
    #: independent PECs are embarrassingly parallel (paper §3.2), and the
    #: execution engine also overlaps independent members of a dependency
    #: schedule.
    cores: int = 1
    #: Execution backend: ``"auto"`` (process pool when ``cores > 1``, serial
    #: otherwise), ``"serial"``, or ``"process"``.
    backend: str = "auto"
    #: Stop at the first policy violation (SPIN's default behaviour).
    stop_at_first_violation: bool = True
    #: Per-PEC state budget for the model checker.
    max_states_per_pec: int = 2_000_000
    #: Optional wall-clock budget per PEC exploration, seconds.
    max_seconds_per_pec: Optional[float] = None
    #: Use the cached SPF computation directly for PECs whose behaviour is
    #: fully determined by OSPF + static routing (no BGP).  This is the limit
    #: of what the deterministic-node reduction achieves on such PECs and
    #: keeps the pure-Python prototype fast; set False to force every PEC
    #: through the model checker.
    fast_ospf: bool = True
    #: Bits in the bitstate Bloom filter when bitstate hashing is enabled.
    bitstate_bits: int = 1 << 22
    #: Keep every converged data plane in the result (memory-hungry; mainly
    #: for tests and for PECs that downstream PECs depend on).
    keep_data_planes: bool = False

    # ------------------------------------------------------------- supervision
    # Fault-tolerance knobs enforced by the execution engine's supervisor
    # (:mod:`repro.engine.backends`).  They shape *how* a result is computed,
    # never *what* it contains, so the incremental result cache deliberately
    # excludes them from its fingerprints (like ``cores``/``backend``).

    #: Wall-clock deadline per task attempt, in seconds (None = no deadline).
    #: The process backend enforces it preemptively (a hung worker is killed
    #: and the pool rebuilt); the serial backend enforces it cooperatively
    #: between exploration steps.
    task_timeout: Optional[float] = None
    #: How many times a failed or timed-out task is retried before the
    #: supervisor records a structured per-task failure
    #: (:class:`~repro.core.results.TaskFailure`) and degrades the verify to
    #: a partial result instead of raising.
    task_retries: int = 2
    #: Base delay of the jittered exponential retry backoff, seconds
    #: (attempt ``n`` waits ``retry_backoff * 2**(n-1)``, capped and jittered
    #: into ``[0.5, 1.0]`` of the nominal delay).
    retry_backoff: float = 0.05
    #: Upper bound on one backoff delay, seconds.
    retry_backoff_cap: float = 2.0
    #: How many *crash*-triggered pool rebuilds the process backend tolerates
    #: before finishing the remaining tasks on the serial backend.
    max_pool_rebuilds: int = 3
