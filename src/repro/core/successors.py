"""Incremental successor-candidate maintenance for the RPVP hot path.

Expanding a state means knowing, for every node, whether it could still
improve its best path and by which peer updates.  Recomputing that from
scratch — the paper's ``can-update`` predicate over all nodes — costs one
import/export/rank evaluation per (node, peer) edge *per state*, which makes
the per-state step quadratic in network size.

An RPVP transition changes a single node's entry, and ``updating_peers(v)``
depends only on ``best(v)`` and ``best(p)`` for ``p`` in ``peers(v)``.  So a
child state's candidate sets differ from its parent's only at the
transitioned node and its (reverse) peers.  :class:`CandidateEngine` exploits
this: each state carries a cached :class:`CandidateSets`, and a state derived
via ``with_best`` builds its cache as a delta off the parent's, re-evaluating
only the affected nodes.  During a depth-first search the parent's cache is
always present when a child is expanded (the parent was expanded first), so
the per-state cost drops from O(E) advertisement evaluations to O(deg).

The cached values are produced by exactly the same
``updating_peers``/``best_updates`` primitives the full rescan uses, so the
successor relation — and with it every exploration statistic — is unchanged.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.protocols.base import PathVectorInstance, Route
from repro.protocols.rpvp import RpvpState, best_updates, updating_peers


class CandidateSets:
    """Per-state successor-candidate summary.

    Attributes:
        decided_pending: Decided nodes that still have an improving peer —
            in a consistent execution a non-empty set means the state can
            never lead to a converged state (paper §4.1.1).
        updates: For every *undecided* node with at least one improving peer,
            its best-ranked updates (the paper's set ``U``).  Each node's
            candidate list is exactly what a full rescan produces; the dict's
            key insertion order is unspecified (consumers sort the keys).
    """

    __slots__ = ("decided_pending", "updates")

    def __init__(
        self,
        decided_pending: FrozenSet[str],
        updates: Dict[str, List[Tuple[str, Route]]],
    ) -> None:
        self.decided_pending = decided_pending
        self.updates = updates


class CandidateEngine:
    """Computes and incrementally maintains :class:`CandidateSets`.

    One engine serves one protocol instance (one prefix under one failure
    scenario); caches are stamped with the engine identity so a state object
    can never be served a cache computed against a different instance.
    """

    def __init__(self, instance: PathVectorInstance) -> None:
        self.instance = instance
        # affected(n) = {n} ∪ {v : n ∈ peers(v)} — the nodes whose candidate
        # sets can change when n's entry changes.  Computed once per engine;
        # peers() is not assumed symmetric.
        affected: Dict[str, set] = {node: {node} for node in instance.nodes()}
        for node in instance.nodes():
            for peer in instance.peers(node):
                if peer in affected:
                    affected[peer].add(node)
        self._affected: Dict[str, FrozenSet[str]] = {
            node: frozenset(members) for node, members in affected.items()
        }

    # ------------------------------------------------------------------ node eval
    def _evaluate(
        self,
        state: RpvpState,
        node: str,
        decided_pending: List[str],
        updates: Dict[str, List[Tuple[str, Route]]],
    ) -> None:
        """Recompute one node's contribution into the output collections."""
        instance = self.instance
        candidates = updating_peers(instance, state, node)
        if state.best(node) is not None:
            if candidates:
                decided_pending.append(node)
        elif candidates:
            updates[node] = best_updates(instance, node, candidates)

    # ------------------------------------------------------------------ cache
    def candidates(self, state: RpvpState) -> CandidateSets:
        """The candidate sets of ``state``, cached on the state itself."""
        if state._engine_token is self:
            return state._engine_cache
        parent = state.parent
        delta = state.delta
        if parent is not None and delta is not None and parent._engine_token is self:
            cache = self._derive(state, parent._engine_cache, delta)
        else:
            cache = self._full_scan(state)
        state._engine_token = self
        state._engine_cache = cache
        return cache

    def _full_scan(self, state: RpvpState) -> CandidateSets:
        decided_pending: List[str] = []
        updates: Dict[str, List[Tuple[str, Route]]] = {}
        for node in self.instance.nodes():
            self._evaluate(state, node, decided_pending, updates)
        return CandidateSets(frozenset(decided_pending), updates)

    def _derive(
        self,
        state: RpvpState,
        parent_cache: CandidateSets,
        delta: Tuple[int, Optional[Route], Optional[Route]],
    ) -> CandidateSets:
        slot, _old_route, _new_route = delta
        node = state.node_names[slot]
        affected = self._affected.get(node)
        if affected is None:
            # The transitioned node is outside this instance — should not
            # happen, but fall back to the exact full recomputation.
            return self._full_scan(state)
        decided_pending: List[str] = [
            name for name in parent_cache.decided_pending if name not in affected
        ]
        updates = {
            name: candidates
            for name, candidates in parent_cache.updates.items()
            if name not in affected
        }
        # Sorted so the derived structures are independent of hash seeding
        # (the per-node candidate lists come from updating_peers either way,
        # and every current consumer additionally sorts the keys).
        for name in sorted(affected):
            self._evaluate(state, name, decided_pending, updates)
        return CandidateSets(frozenset(decided_pending), updates)
