"""Incremental successor-candidate maintenance for the RPVP hot path.

Expanding a state means knowing, for every node, whether it could still
improve its best path and by which peer updates.  Recomputing that from
scratch — the paper's ``can-update`` predicate over all nodes — costs one
import/export/rank evaluation per (node, peer) edge *per state*, which makes
the per-state step quadratic in network size.

An RPVP transition changes a single node's entry, and ``updating_peers(v)``
depends only on ``best(v)`` and ``best(p)`` for ``p`` in ``peers(v)``.  So a
child state's candidate sets differ from its parent's only at the
transitioned node and its (reverse) peers.  :class:`CandidateEngine` exploits
this: each state carries a cached :class:`CandidateSets`, and a state derived
via ``with_best`` builds its cache as a delta off the parent's, re-evaluating
only the affected nodes.  During a depth-first search the parent's cache is
always present when a child is expanded (the parent was expanded first), so
the per-state cost drops from O(E) advertisement evaluations to O(deg).

The cached values are produced by exactly the same
``updating_peers``/``best_updates`` primitives the full rescan uses, so the
successor relation — and with it every exploration statistic — is unchanged.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.protocols.base import PathVectorInstance, Route
from repro.protocols.rpvp import RpvpState, node_space_for


class CandidateSets:
    """Per-state successor-candidate summary.

    Attributes:
        decided_pending: Decided nodes that still have an improving peer —
            in a consistent execution a non-empty set means the state can
            never lead to a converged state (paper §4.1.1).
        updates: For every *undecided* node with at least one improving peer,
            its best-ranked updates (the paper's set ``U``).  Each node's
            candidate list is exactly what a full rescan produces; the dict's
            key insertion order is unspecified (consumers sort the keys).
    """

    __slots__ = ("decided_pending", "updates")

    def __init__(
        self,
        decided_pending: FrozenSet[str],
        updates: Dict[str, List[Tuple[str, Route]]],
    ) -> None:
        self.decided_pending = decided_pending
        self.updates = updates


class CandidateEngine:
    """Computes and incrementally maintains :class:`CandidateSets`.

    One engine serves one protocol instance (one prefix under one failure
    scenario); caches are stamped with the engine identity so a state object
    can never be served a cache computed against a different instance.
    """

    def __init__(self, instance: PathVectorInstance) -> None:
        self.instance = instance
        # The engine's memos are id-keyed against the instance's intern
        # table, so the node space (memoised weakly) must outlive the memos:
        # hold it strongly for the engine's lifetime.
        self._space = node_space_for(instance)
        self._table = self._space.table
        slot_of = self._space.slot_of
        # affected(n) = {n} ∪ {v : n ∈ peers(v)} — the nodes whose candidate
        # sets can change when n's entry changes.  Computed once per engine;
        # peers() is not assumed symmetric.
        affected: Dict[str, set] = {node: {node} for node in instance.nodes()}
        for node in instance.nodes():
            for peer in instance.peers(node):
                if peer in affected:
                    affected[peer].add(node)
        self._affected: Dict[str, FrozenSet[str]] = {
            node: frozenset(members) for node, members in affected.items()
        }
        self._affected_sorted: Dict[str, Tuple[str, ...]] = {
            node: tuple(sorted(members)) for node, members in affected.items()
        }
        # Per-edge and per-node id-keyed memos over the intern table: each
        # directed edge (node <- peer) owns a dict mapping the peer's best-id
        # to (advertisement, its id, its rank at node); each node owns a dict
        # mapping a route id to its rank there.  Keying small ints into
        # per-edge dicts keeps the per-state hot loop free of tuple
        # construction and Route hashing.  Prefix-independent instances
        # (OSPF) publish shared memo hosts so the per-PEC engines of one
        # failure scenario warm each other up.
        edge_host = getattr(instance, "_engine_adv_edge", None)
        rank_host = getattr(instance, "_engine_rank_at", None)
        # The engine's id memos already guarantee one evaluation per
        # (edge, route id), so prefer uncached instance hooks when offered —
        # the route-keyed memo layers underneath would only re-hash routes.
        self._advertise = getattr(instance, "advertisement_direct", None) or instance.advertisement
        self._rank_fn = getattr(instance, "_engine_rank_fn", None) or instance.cached_rank
        if edge_host is None:
            edge_host = {}
        if rank_host is None:
            rank_host = {}
        self._slot_of = slot_of
        self._rank_at: Dict[str, Dict[int, Tuple]] = {}
        self._edges: Dict[str, List[Tuple[str, int, Dict[int, tuple]]]] = {}
        for node in instance.nodes():
            self._rank_at[node] = rank_host.setdefault(node, {})
            self._edges[node] = [
                (peer, slot_of[peer], edge_host.setdefault((node, peer), {}))
                for peer in instance.peers(node)
            ]

    # ------------------------------------------------------------------ node eval
    def _evaluate(
        self,
        state: RpvpState,
        node: str,
        decided_pending: List[str],
        updates: Dict[str, List[Tuple[str, Route]]],
    ) -> None:
        """Recompute one node's contribution into the output collections.

        Semantically this is ``updating_peers`` + ``best_updates`` (the raw
        Algorithm 1 primitives), evaluated over intern-table ids so the memo
        lookups on the per-state hot path hash small integers instead of
        routes.
        """
        ids = state._ids
        rank_at = self._rank_at[node]
        incumbent_id = ids[self._slot_of[node]]
        if incumbent_id:
            # A decided node: any improving peer marks it pending.
            incumbent_rank = rank_at.get(incumbent_id)
            if incumbent_rank is None:
                incumbent_rank = self._rank_fn(node, self._table.route(incumbent_id))
                rank_at[incumbent_id] = incumbent_rank
            for peer, peer_slot, memo in self._edges[node]:
                peer_best_id = ids[peer_slot]
                entry = memo.get(peer_best_id)
                if entry is None:
                    entry = self._miss(node, peer, peer_best_id, memo, rank_at)
                rank = entry[2]
                if rank is not None and rank < incumbent_rank:
                    decided_pending.append(node)
                    return
            return
        best: List[Tuple[str, Route]] = []
        best_rank = None
        for peer, peer_slot, memo in self._edges[node]:
            peer_best_id = ids[peer_slot]
            entry = memo.get(peer_best_id)
            if entry is None:
                entry = self._miss(node, peer, peer_best_id, memo, rank_at)
            rank = entry[2]
            if rank is None:
                continue
            if best_rank is None or rank < best_rank:
                best = [(peer, entry[0])]
                best_rank = rank
            elif rank == best_rank:
                best.append((peer, entry[0]))
        if best:
            updates[node] = best

    def _miss(
        self,
        node: str,
        peer: str,
        peer_best_id: int,
        memo: Dict[int, tuple],
        rank_at: Dict[int, Tuple],
    ) -> tuple:
        """Fill one per-edge memo entry (the only cold path of the engine)."""
        table = self._table
        advertisement = self._advertise(node, peer, table.route(peer_best_id))
        if advertisement is None:
            entry = (None, 0, None)
        else:
            adv_id = table.route_id(advertisement)
            rank = rank_at.get(adv_id)
            if rank is None:
                rank = self._rank_fn(node, advertisement)
                rank_at[adv_id] = rank
            entry = (advertisement, adv_id, rank)
        memo[peer_best_id] = entry
        return entry

    # ------------------------------------------------------------------ cache
    def candidates(self, state: RpvpState) -> CandidateSets:
        """The candidate sets of ``state``, cached on the state itself."""
        if state._engine_token is self:
            return state._engine_cache
        parent = state.parent
        delta = state.delta
        if parent is not None and delta is not None and parent._engine_token is self:
            cache = self._derive(state, parent._engine_cache, delta)
        else:
            cache = self._full_scan(state)
        state._engine_token = self
        state._engine_cache = cache
        return cache

    def _full_scan(self, state: RpvpState) -> CandidateSets:
        decided_pending: List[str] = []
        updates: Dict[str, List[Tuple[str, Route]]] = {}
        for node in self.instance.nodes():
            self._evaluate(state, node, decided_pending, updates)
        return CandidateSets(frozenset(decided_pending), updates)

    def _derive(
        self,
        state: RpvpState,
        parent_cache: CandidateSets,
        delta: Tuple[int, Optional[Route], Optional[Route]],
    ) -> CandidateSets:
        slot, _old_route, _new_route = delta
        node = state.node_names[slot]
        affected = self._affected.get(node)
        if affected is None:
            # The transitioned node is outside this instance — should not
            # happen, but fall back to the exact full recomputation.
            return self._full_scan(state)
        decided_pending: List[str] = [
            name for name in parent_cache.decided_pending if name not in affected
        ]
        updates = {
            name: candidates
            for name, candidates in parent_cache.updates.items()
            if name not in affected
        }
        # Sorted so the derived structures are independent of hash seeding
        # (the per-node candidate lists come from updating_peers either way,
        # and every current consumer additionally sorts the keys).
        for name in self._affected_sorted[node]:
            self._evaluate(state, name, decided_pending, updates)
        return CandidateSets(frozenset(decided_pending), updates)
