"""The network model explored by the model checker, and the FIB builder.

This module is the Promela-model analogue of the paper's prototype: it wires
the RPVP semantics of :mod:`repro.protocols.rpvp` into the generic
:class:`~repro.modelcheck.explorer.Explorer`, applying the §4 optimizations by
shrinking the successor relation, and it assembles converged per-prefix
protocol states into network-wide data planes (the FIB model of §3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Set, Tuple

from repro.config.objects import NetworkConfig
from repro.dataplane import DataPlane, FibEntry
from repro.exceptions import VerificationError
from repro.modelcheck.explorer import (
    ExplorationStatistics,
    Explorer,
    ExplorerOptions,
)
from repro.modelcheck.por import ReductionStatistics
from repro.netaddr import Prefix
from repro.core.determinism import (
    BgpDeterminism,
    NodeDecision,
    OspfDeterminism,
    independence_groups,
)
from repro.core.options import OptimizationFlags, PlanktonOptions
from repro.core.successors import CandidateEngine
from repro.modelcheck.hashing import ZobristFingerprinter
from repro.pec.classes import PacketEquivalenceClass
from repro.protocols.base import EPSILON, PathVectorInstance, Route, RouteSource
from repro.protocols.bgp import BgpInstance
from repro.protocols.ospf import OspfComputation
from repro.protocols.ospf_instance import OspfInstance
from repro.protocols.rpvp import (
    RpvpState,
    RpvpTransition,
    enabled_nodes,
    initial_state,
    node_space_for,
    rpvp_successors,
    updating_peers,
)
from repro.protocols.static import resolve_static_routes
from repro.topology.failures import FailureScenario


# --------------------------------------------------------------------------- deps
class DependencyContext:
    """Converged data planes of the PECs the current PEC depends on.

    The verifier stores, for every upstream PEC, one of its converged data
    planes (the combination currently being explored), and this context
    resolves recursive lookups against them: next hops towards an IP address,
    and reachability between devices (used for iBGP session liveness).
    """

    def __init__(
        self,
        pecs: Sequence[PacketEquivalenceClass] = (),
        data_planes: Optional[Dict[int, DataPlane]] = None,
    ) -> None:
        self._pecs = list(pecs)
        self._data_planes: Dict[int, DataPlane] = dict(data_planes or {})

    def add(self, pec: PacketEquivalenceClass, data_plane: DataPlane) -> None:
        """Register the converged data plane of an upstream PEC."""
        if pec.index not in {p.index for p in self._pecs}:
            self._pecs.append(pec)
        self._data_planes[pec.index] = data_plane

    def data_planes(self) -> Dict[int, DataPlane]:
        """All registered upstream data planes, keyed by PEC index."""
        return dict(self._data_planes)

    def data_plane_for(self, address: int) -> Optional[DataPlane]:
        """The upstream data plane whose PEC covers ``address``."""
        for pec in self._pecs:
            if pec.address_range.contains_address(address) and pec.index in self._data_planes:
                return self._data_planes[pec.index]
        return None

    def next_hops_toward(self, node: str, address: int) -> Tuple[str, ...]:
        """Next hops ``node`` uses towards ``address`` per the upstream data planes."""
        data_plane = self.data_plane_for(address)
        if data_plane is None:
            return ()
        return data_plane.next_hops(node, address)

    def reaches(self, source: str, address: int) -> bool:
        """Whether ``source`` can deliver traffic to ``address`` upstream."""
        data_plane = self.data_plane_for(address)
        if data_plane is None:
            return False
        from repro.dataplane.forwarding import PathStatus, trace_paths

        branches = trace_paths(data_plane, source, address)
        return any(branch.status == PathStatus.DELIVERED for branch in branches)


# --------------------------------------------------------------------------- outcome
@dataclass
class ConvergedOutcome:
    """One converged data plane of a PEC, with how it was reached."""

    data_plane: DataPlane
    control_plane: Dict[str, Route] = field(default_factory=dict)
    steps: List[object] = field(default_factory=list)
    bgp_states: Dict[Prefix, RpvpState] = field(default_factory=dict)


@dataclass
class PrefixExplorationResult:
    """Converged control-plane states for one prefix."""

    prefix: Prefix
    states: List[RpvpState]
    step_labels: List[List[object]]
    statistics: Optional[ExplorationStatistics] = None


# --------------------------------------------------------------------------- explorer
class PecExplorer:
    """Explores all converged data planes of one PEC under one failure scenario."""

    def __init__(
        self,
        network: NetworkConfig,
        pec: PacketEquivalenceClass,
        failure: FailureScenario,
        options: PlanktonOptions,
        policy_sources: Optional[Sequence[str]] = None,
        dependency_context: Optional[DependencyContext] = None,
        ospf_computation: Optional[OspfComputation] = None,
    ) -> None:
        self.network = network
        self.pec = pec
        self.failure = failure
        self.options = options
        self.flags = options.optimizations
        self.policy_sources = list(policy_sources) if policy_sources else None
        self.dependencies = dependency_context or DependencyContext()
        self.ospf = ospf_computation or OspfComputation(network)
        #: One shared §4-reduction ledger for every per-prefix search of this
        #: PEC run (the successor pipeline records enabled-vs-expanded there).
        self.reduction = ReductionStatistics(mode="rpvp")
        self.statistics = ExplorationStatistics(reduction=self.reduction)

    # ------------------------------------------------------------------ protocol instances
    def _failed_links(self) -> Set[int]:
        return self.failure.as_set()

    def _loopback_of(self, device: str) -> Optional[Prefix]:
        node = self.network.topology.node(device)
        return node.loopback

    def _ibgp_session_up(self, a: str, b: str) -> bool:
        """An iBGP session is usable when each side reaches the other's loopback."""
        for near, far in ((a, b), (b, a)):
            loopback = self._loopback_of(far)
            if loopback is None:
                return False
            address = loopback.first
            if self.dependencies.data_plane_for(address) is not None:
                if not self.dependencies.reaches(near, address):
                    return False
            else:
                # No upstream data plane provided: fall back to the IGP view.
                table = self.ospf.compute([far], self._failed_links())
                if not table.is_reachable(near):
                    return False
        return True

    def _igp_cost(self, node: str, peer: str) -> float:
        """IGP cost from ``node`` to ``peer`` under the current failures."""
        cost = self.ospf.igp_cost_between(node, peer, self._failed_links())
        if cost == float("inf"):
            return 1_000_000.0
        return cost

    def bgp_instance(self, prefix: Prefix) -> BgpInstance:
        """The BGP instance for ``prefix`` under this failure scenario."""
        return BgpInstance(
            self.network,
            prefix,
            failed_links=self._failed_links(),
            session_up=self._ibgp_session_up,
            igp_cost=self._igp_cost,
        )

    def ospf_instance(self, prefix: Prefix) -> OspfInstance:
        """The OSPF instance for ``prefix`` under this failure scenario."""
        return OspfInstance(
            self.network,
            prefix,
            failed_links=self._failed_links(),
            computation=self.ospf,
        )

    # ------------------------------------------------------------------ exploration
    def explore(
        self,
        on_outcome: Optional[Callable[["ConvergedOutcome"], Optional[str]]] = None,
        keep_outcomes: bool = True,
    ) -> List[ConvergedOutcome]:
        """All converged data planes of the PEC under this failure scenario.

        When ``on_outcome`` is given and the PEC has at most one BGP prefix,
        the exploration streams: the callback is invoked on every converged
        data plane *as the model checker reaches it*, and a non-None return
        value (a violation message) stops the search immediately — this is how
        the paper's prototype reports the first violating event sequence
        without enumerating the remaining converged states.
        """
        bgp_prefixes = [prefix for prefix, devices in self.pec.bgp_origins if devices]
        if on_outcome is not None and len(bgp_prefixes) <= 1 and self.options.fast_ospf:
            return self._explore_streaming(
                bgp_prefixes[0] if bgp_prefixes else None, on_outcome, keep_outcomes
            )
        per_prefix_results: List[PrefixExplorationResult] = []
        for prefix in bgp_prefixes:
            result = self._explore_bgp_prefix(prefix)
            per_prefix_results.append(result)
            if result.statistics is not None:
                self._accumulate(result.statistics)

        # OSPF-only PECs (optionally) go through the model checker as well,
        # mainly to support the Figure 8 ablations; with the optimizations on
        # the result is identical to the cached SPF computation.
        if not self.options.fast_ospf:
            for prefix, devices in self.pec.ospf_origins:
                if devices:
                    result = self._explore_ospf_prefix(prefix)
                    if result.statistics is not None:
                        self._accumulate(result.statistics)

        outcomes: List[ConvergedOutcome] = []
        combinations = self._combinations(per_prefix_results)
        for combo in combinations:
            bgp_states = {result.prefix: state for result, (state, _labels) in zip(per_prefix_results, combo)}
            steps: List[object] = []
            for _result, (_state, labels) in zip(per_prefix_results, combo):
                steps.extend(labels)
            data_plane, control_plane = self.build_data_plane(bgp_states)
            outcome = ConvergedOutcome(
                data_plane=data_plane,
                control_plane=control_plane,
                steps=steps,
                bgp_states=bgp_states,
            )
            outcomes.append(outcome)
            if on_outcome is not None:
                violation = on_outcome(outcome)
                if violation is not None:
                    break
        return outcomes

    def _explore_streaming(
        self,
        prefix: Optional[Prefix],
        on_outcome: Callable[["ConvergedOutcome"], Optional[str]],
        keep_outcomes: bool,
    ) -> List[ConvergedOutcome]:
        """Streamed exploration for PECs with at most one BGP prefix."""
        outcomes: List[ConvergedOutcome] = []

        if prefix is None:
            # Purely deterministic PEC (OSPF + static): one converged state.
            data_plane, control_plane = self.build_data_plane({})
            outcome = ConvergedOutcome(data_plane=data_plane, control_plane=control_plane)
            if keep_outcomes:
                outcomes.append(outcome)
            on_outcome(outcome)
            return outcomes

        instance = self.bgp_instance(prefix)
        analyzer = BgpDeterminism(instance)
        engine = self._candidate_engine(instance)
        successors = self._optimized_successors(
            instance, analyzer, use_for_determinism=self.flags.deterministic_nodes, engine=engine
        )

        def check_terminal(state: RpvpState, labels: List[object]) -> Optional[str]:
            accepted = self._accept_terminal(instance, state, analyzer, engine=engine)
            # Terminal states may outlive the search inside outcomes; drop the
            # DFS ancestor chain and search caches they would otherwise pin.
            state.detach()
            if not accepted:
                return None
            data_plane, control_plane = self.build_data_plane({prefix: state})
            outcome = ConvergedOutcome(
                data_plane=data_plane,
                control_plane=control_plane,
                steps=list(labels),
                bgp_states={prefix: state},
            )
            if keep_outcomes:
                outcomes.append(outcome)
            return on_outcome(outcome)

        explorer_options = self._explorer_options()
        explorer_options.stop_at_first_violation = self.options_stop_early
        explorer = Explorer(
            successors=successors,
            check_terminal=check_terminal,
            options=explorer_options,
        )
        explorer.canonicalize = self._make_canonicalizer(explorer, instance)
        outcome_of_search = explorer.run(initial_state(instance), collect_converged=False)
        self._accumulate(outcome_of_search.statistics)
        return outcomes

    @property
    def options_stop_early(self) -> bool:
        """Whether the streaming search should stop at the first violation."""
        return self.options.stop_at_first_violation

    @staticmethod
    def _combinations(
        results: Sequence[PrefixExplorationResult],
    ) -> List[List[Tuple[RpvpState, List[object]]]]:
        """Cross product of the converged states across prefixes."""
        combos: List[List[Tuple[RpvpState, List[object]]]] = [[]]
        for result in results:
            if not result.states:
                # A prefix with BGP origins but no converged state (e.g. all
                # origins partitioned away): keep a placeholder empty state.
                continue
            paired = list(zip(result.states, result.step_labels))
            combos = [combo + [choice] for combo in combos for choice in paired]
        return combos

    def _accumulate(self, stats: ExplorationStatistics) -> None:
        self.statistics.states_expanded += stats.states_expanded
        self.statistics.unique_states += stats.unique_states
        self.statistics.transitions += stats.transitions
        self.statistics.terminal_states += stats.terminal_states
        self.statistics.unique_terminal_states += stats.unique_terminal_states
        self.statistics.max_depth_reached = max(
            self.statistics.max_depth_reached, stats.max_depth_reached
        )
        self.statistics.elapsed_seconds += stats.elapsed_seconds
        self.statistics.visited_bytes += stats.visited_bytes
        self.statistics.interner_entries += stats.interner_entries
        self.statistics.interner_bytes += stats.interner_bytes
        self.statistics.state_bytes += stats.state_bytes
        self.statistics.truncated = self.statistics.truncated or stats.truncated

    # ------------------------------------------------------------------ per-prefix searches
    def _explorer_options(self) -> ExplorerOptions:
        return ExplorerOptions(
            max_states=self.options.max_states_per_pec,
            max_seconds=self.options.max_seconds_per_pec,
            stop_at_first_violation=False,
            use_bitstate=self.flags.bitstate_hashing,
            bitstate_bits=self.options.bitstate_bits,
        )

    def _make_canonicalizer(
        self, explorer: Explorer, instance: PathVectorInstance
    ) -> Callable[[RpvpState], Hashable]:
        """State-hashing canonicalizer: incremental Zobrist fingerprints.

        States already hold intern-table ids per slot (the §4.4 state
        hashing), and the visited-set key is a 64-bit Zobrist fingerprint a
        child state derives from its parent's in O(1) — one table lookup for
        the transitioned node's old and new id, with no object hashing at
        all.  The fingerprinter is bound to the instance's shared
        :class:`~repro.protocols.interning.RouteInternTable` and handed to
        the explorer as its interner so the reported table statistics keep
        counting the entries this search touched.
        """
        if not self.flags.state_hashing:
            return lambda state: state
        space = node_space_for(instance)
        fingerprinter = ZobristFingerprinter(space.table)
        # One 4-byte id slot per node plus the array object overhead.
        fingerprinter.state_bytes_per_state = 64 + 4 * len(space.names)
        explorer.interner = fingerprinter
        return lambda state: state.fingerprint(fingerprinter)

    def _candidate_engine(self, instance: PathVectorInstance) -> Optional[CandidateEngine]:
        """The incremental candidate engine for one instance (None when the
        unoptimized semantics are in effect)."""
        if not self.flags.consistent_execution:
            return None
        return CandidateEngine(instance)

    def _explore_instance(
        self,
        instance: PathVectorInstance,
        successors: Callable[[RpvpState], List[Tuple[object, RpvpState]]],
        stability: Optional[BgpDeterminism] = None,
        engine: Optional[CandidateEngine] = None,
    ) -> PrefixExplorationResult:
        explorer = Explorer(
            successors=successors,
            check_terminal=None,
            canonicalize=None,
            options=self._explorer_options(),
            reduction=self.reduction,
        )
        explorer.canonicalize = self._make_canonicalizer(explorer, instance)
        start = initial_state(instance)
        outcome = explorer.run(start, collect_converged=True)
        states: List[RpvpState] = []
        labels: List[List[object]] = []
        for state, path in zip(outcome.converged_states, outcome.converged_paths):
            accepted = self._accept_terminal(instance, state, stability, engine=engine)
            # Collected states outlive the search; drop the DFS ancestor
            # chain and search caches they would otherwise pin (after the
            # acceptance check, which reuses the cached candidate sets).
            state.detach()
            if accepted:
                states.append(state)
                labels.append(path)
        if not states and not outcome.converged_states:
            # Defensive: the initial state itself may already be converged.
            if self._accept_terminal(instance, start, stability, engine=engine):
                states.append(start.detach())
                labels.append([])
        return PrefixExplorationResult(
            prefix=Prefix("0.0.0.0/0") if not hasattr(instance, "prefix") else instance.prefix,  # type: ignore[attr-defined]
            states=states,
            step_labels=labels,
            statistics=outcome.statistics,
        )

    def _accept_terminal(
        self,
        instance: PathVectorInstance,
        state: RpvpState,
        stability: Optional[BgpDeterminism] = None,
        engine: Optional[CandidateEngine] = None,
    ) -> bool:
        """Keep only terminals that are genuine (or policy-sufficient) converged states."""
        if self.flags.consistent_execution:
            if engine is not None:
                # The exploration already computed (or can compute in O(deg))
                # this state's candidate sets; reuse them instead of
                # re-evaluating every (node, peer) advertisement.
                cache = engine.candidates(state)
                if cache.decided_pending:
                    return False
                if (
                    self.flags.policy_based_pruning
                    and self._sources_decided(instance, state)
                    and (stability is None or stability.decisions_are_stable(state))
                ):
                    return True
                if cache.updates:
                    return False
                if stability is not None and not stability.decisions_are_stable(state):
                    return False
                return True
            # A decided node with an improving update from a decided peer means
            # this execution is not consistent with any converged state.
            for node in instance.nodes():
                if state.best(node) is None:
                    continue
                if updating_peers(instance, state, node):
                    return False
            if (
                self.flags.policy_based_pruning
                and self._sources_decided(instance, state)
                and (stability is None or stability.decisions_are_stable(state))
            ):
                return True
            # Otherwise require full convergence: no undecided node can update.
            for node in instance.nodes():
                if state.best(node) is None and updating_peers(instance, state, node):
                    return False
            if stability is not None and not stability.decisions_are_stable(state):
                return False
            return True
        return not enabled_nodes(instance, state)

    def _sources_decided(self, instance: PathVectorInstance, state: RpvpState) -> bool:
        if not self.policy_sources:
            return False
        participating = [s for s in self.policy_sources if s in set(instance.nodes())]
        if not participating:
            return False
        return all(state.best(source) is not None for source in participating)

    def _explore_bgp_prefix(self, prefix: Prefix) -> PrefixExplorationResult:
        instance = self.bgp_instance(prefix)
        # The analyzer is always built: even with the deterministic-node
        # optimization off it provides the stability check that keeps
        # policy-based pruning sound (see ``_optimized_successors``).
        analyzer = BgpDeterminism(instance)
        engine = self._candidate_engine(instance)
        successors = self._optimized_successors(
            instance, analyzer, use_for_determinism=self.flags.deterministic_nodes, engine=engine
        )
        result = self._explore_instance(instance, successors, stability=analyzer, engine=engine)
        result.prefix = prefix
        return result

    def _explore_ospf_prefix(self, prefix: Prefix) -> PrefixExplorationResult:
        instance = self.ospf_instance(prefix)
        analyzer = OspfDeterminism(instance) if self.flags.deterministic_nodes else None
        engine = self._candidate_engine(instance)
        successors = self._optimized_successors(
            instance, analyzer, use_for_determinism=self.flags.deterministic_nodes, engine=engine
        )
        result = self._explore_instance(instance, successors, engine=engine)
        result.prefix = prefix
        return result

    # ------------------------------------------------------------------ optimized successors
    def _optimized_successors(
        self,
        instance: PathVectorInstance,
        analyzer,
        use_for_determinism: bool = True,
        engine: Optional[CandidateEngine] = None,
    ) -> Callable[[RpvpState], List[Tuple[object, RpvpState]]]:
        flags = self.flags
        sources = self.policy_sources
        reduction = self.reduction
        if flags.consistent_execution and engine is None:
            engine = CandidateEngine(instance)
        # Sources that participate in this instance, as state-array slots:
        # the sources-decided test runs per state and reduces to "is every
        # source slot a non-zero route id".
        slot_of = node_space_for(instance).slot_of
        source_slots = tuple(
            slot_of[source] for source in (sources or ()) if source in slot_of
        )

        def successors(state: RpvpState) -> List[Tuple[object, RpvpState]]:
            if not flags.consistent_execution:
                expansion = rpvp_successors(instance, state)
                if expansion:
                    reduction.observe_expansion(
                        enabled=len(expansion), expanded=len(expansion), reduced=False
                    )
                return expansion

            # The candidate sets are maintained incrementally: a state derived
            # from its parent by one node's decision re-evaluates only that
            # node and its peers (see repro.core.successors).
            cache = engine.candidates(state)

            enabled_count = 0
            for node_updates in cache.updates.values():
                enabled_count += len(node_updates)

            # Consistent executions only: a node that has selected a path never
            # changes it, so if any decided node could still be improved the
            # execution cannot lead to a converged state — abandon it.
            if cache.decided_pending:
                if enabled_count:
                    reduction.observe_expansion(
                        enabled=enabled_count, expanded=0, reduced=True
                    )
                return []

            # Policy-based pruning: once every source node has decided, the
            # forwarding the policy inspects is fixed (consistent executions
            # never revisit decisions), so stop here — provided no decided
            # node could still be forced to change its selection later.
            if (
                flags.policy_based_pruning
                and source_slots
                and all(state._ids[slot] for slot in source_slots)
                and (
                    not isinstance(analyzer, BgpDeterminism)
                    or analyzer.decisions_are_stable(state)
                )
            ):
                if enabled_count:
                    reduction.observe_expansion(
                        enabled=enabled_count, expanded=0, reduced=True
                    )
                return []

            candidates_of = cache.updates
            if not candidates_of:
                return []

            if analyzer is not None and use_for_determinism:
                decision = self._decide(analyzer, state, candidates_of)
                if decision.kind in ("deterministic", "tied") and decision.node is not None:
                    reduction.observe_expansion(
                        enabled=enabled_count,
                        expanded=len(decision.candidates),
                        reduced=len(decision.candidates) < enabled_count,
                    )
                    return [
                        (
                            RpvpTransition(node=decision.node, new_route=route, from_peer=peer),
                            state.with_best(decision.node, route),
                        )
                        for peer, route in decision.candidates
                    ]

            enabled = sorted(candidates_of)
            if flags.decision_independence and len(enabled) > 1:
                groups = independence_groups(instance, state, enabled)
                if groups:
                    enabled = groups[0]

            result: List[Tuple[object, RpvpState]] = []
            for node in enabled:
                for peer, route in candidates_of[node]:
                    result.append(
                        (
                            RpvpTransition(node=node, new_route=route, from_peer=peer),
                            state.with_best(node, route),
                        )
                    )
            reduction.observe_expansion(
                enabled=enabled_count,
                expanded=len(result),
                reduced=len(result) < enabled_count,
            )
            return result

        return successors

    def _decide(self, analyzer, state: RpvpState, candidates_of) -> NodeDecision:
        if isinstance(analyzer, OspfDeterminism):
            return analyzer.pick(sorted(candidates_of), candidates_of)
        defer = set(self.policy_sources or ())
        return analyzer.analyze(state, candidates_of, defer=defer)

    # ------------------------------------------------------------------ FIB construction
    def build_data_plane(
        self,
        bgp_states: Optional[Dict[Prefix, RpvpState]] = None,
    ) -> Tuple[DataPlane, Dict[str, Route]]:
        """Combine per-prefix protocol results into a network-wide data plane."""
        bgp_states = bgp_states or {}
        devices = self.network.topology.nodes
        data_plane = DataPlane(devices, pec_range=self.pec.address_range)
        data_plane.annotations["failure"] = self.failure.describe(self.network.topology)
        control_plane: Dict[str, Route] = {}
        failed = self._failed_links()

        # Per-prefix OSPF and BGP entries, most specific prefixes last so that
        # equal-prefix conflicts are decided purely by administrative distance.
        for prefix in sorted(self.pec.prefixes, key=lambda p: p.length):
            self._install_ospf_entries(data_plane, prefix, failed)
            self._install_bgp_entries(data_plane, prefix, bgp_states.get(prefix), control_plane)

        # Static routes last: they may depend on entries installed above (for
        # recursive next hops resolved inside the same PEC).
        for prefix in sorted(self.pec.prefixes, key=lambda p: p.length):
            self._install_static_entries(data_plane, prefix, failed)

        return data_plane, control_plane

    def _ospf_origins_for(self, prefix: Prefix) -> List[str]:
        origins = set(self.pec.origins_for(prefix, "ospf"))
        for name, config in self.network.devices.items():
            if config.ospf is not None and config.ospf.redistribute_static:
                if any(route.prefix == prefix for route in config.static_routes):
                    origins.add(name)
        return sorted(origins)

    def _install_ospf_entries(self, data_plane: DataPlane, prefix: Prefix, failed: Set[int]) -> None:
        origins = self._ospf_origins_for(prefix)
        if not origins:
            return
        table = self.ospf.compute(origins, failed)
        origin_set = set(origins)
        for node, distance in table.distances.items():
            if node in origin_set:
                data_plane.install(
                    node,
                    FibEntry(prefix=prefix, source=RouteSource.CONNECTED, delivers_locally=True),
                )
            else:
                next_hops = table.next_hops.get(node, ())
                if next_hops:
                    data_plane.install(
                        node,
                        FibEntry(
                            prefix=prefix,
                            next_hops=next_hops,
                            source=RouteSource.OSPF,
                            metric=int(distance),
                        ),
                    )

    def _install_bgp_entries(
        self,
        data_plane: DataPlane,
        prefix: Prefix,
        state: Optional[RpvpState],
        control_plane: Dict[str, Route],
    ) -> None:
        bgp_origin_devices = set(self.pec.origins_for(prefix, "bgp"))
        for origin in bgp_origin_devices:
            data_plane.install(
                origin,
                FibEntry(prefix=prefix, source=RouteSource.CONNECTED, delivers_locally=True),
            )
        if state is None:
            return
        for node, route in state.items():
            if route is None or route.path == EPSILON:
                if route is not None:
                    control_plane[node] = route
                continue
            control_plane[node] = route
            peer = route.path.head
            node_cfg = self.network.device(node)
            peer_cfg = self.network.device(peer)
            if node_cfg.bgp is None or peer_cfg.bgp is None:
                continue
            if node_cfg.bgp.asn != peer_cfg.bgp.asn:
                # eBGP: the peer is directly connected.
                data_plane.install(
                    node,
                    FibEntry(prefix=prefix, next_hops=(peer,), source=RouteSource.EBGP),
                )
            else:
                # iBGP: recurse through the IGP route to the peer's loopback.
                next_hops = self._resolve_ibgp_next_hops(node, peer)
                data_plane.install(
                    node,
                    FibEntry(
                        prefix=prefix,
                        next_hops=next_hops,
                        source=RouteSource.IBGP,
                        metric=route.igp_cost,
                    ),
                )

    def _resolve_ibgp_next_hops(self, node: str, peer: str) -> Tuple[str, ...]:
        loopback = self._loopback_of(peer)
        if loopback is not None:
            upstream = self.dependencies.next_hops_toward(node, loopback.first)
            if upstream:
                return upstream
        # Fall back to the IGP shortest path towards the peer.
        table = self.ospf.compute([peer], self._failed_links())
        return table.next_hops.get(node, ())

    def _install_static_entries(self, data_plane: DataPlane, prefix: Prefix, failed: Set[int]) -> None:
        for device in self.network.topology.nodes:
            resolution = resolve_static_routes(self.network, device, prefix, failed)
            if resolution is None:
                continue
            if resolution.drop:
                data_plane.install(
                    device,
                    FibEntry(prefix=prefix, source=RouteSource.STATIC, drop=True),
                )
                continue
            next_hops: List[str] = list(resolution.next_hop_nodes)
            for address_prefix in resolution.unresolved_ips:
                address = address_prefix.first
                if self.pec.address_range.contains_address(address):
                    entry = data_plane.lookup(device, address)
                    if entry is not None and entry.next_hops:
                        next_hops.extend(entry.next_hops)
                else:
                    next_hops.extend(self.dependencies.next_hops_toward(device, address))
            data_plane.install(
                device,
                FibEntry(
                    prefix=prefix,
                    next_hops=tuple(sorted(set(next_hops))),
                    source=RouteSource.STATIC,
                ),
            )
