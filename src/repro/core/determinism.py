"""Deterministic-node detection heuristics (paper §4.1.2) and decision independence (§4.1.3).

The heart of Plankton's partial-order reduction: at each step of the RPVP
exploration, if some enabled node can be shown to have a *guaranteed winning*
update — one that no future advertisement could ever beat — then only that
node is executed, avoiding the branching over all enabled nodes.

* For OSPF the heuristic is a network-wide shortest-path computation: a node
  is allowed to execute only after all nodes with shorter paths have executed
  (the SPF distances are cached per topology/failures/origins in
  :class:`repro.protocols.ospf.OspfComputation`).

* For BGP the heuristic follows the decision process conservatively: an
  update is a guaranteed winner when its rank is strictly better than a lower
  bound on the rank of any update that could still arrive from a peer that
  has not yet decided.  The lower bound uses the highest local preference any
  import policy could assign, the minimum possible AS-path length in the
  session graph, and the minimum IGP cost among peers — the same three checks
  the paper describes.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.protocols.base import EPSILON, PathVectorInstance, Route, RouteSource
from repro.protocols.bgp import BgpInstance
from repro.protocols.filters import maximum_local_pref
from repro.protocols.ospf_instance import OspfInstance
from repro.protocols.rpvp import RpvpState


@dataclass
class NodeDecision:
    """What the determinism analysis concluded for one step.

    ``kind`` is one of:

    * ``"deterministic"`` — ``node`` has a single guaranteed-winning update;
      only that successor needs exploring.
    * ``"tied"`` — ``node``'s possible winners are all already visible, but
      there are several of them; branch over those updates only.
    * ``"none"`` — no node could be resolved; fall back to branching over all
      enabled nodes.
    """

    kind: str
    node: Optional[str] = None
    candidates: Tuple[Tuple[str, Route], ...] = ()


class OspfDeterminism:
    """Deterministic execution order for OSPF: increasing SPF distance."""

    def __init__(self, instance: OspfInstance) -> None:
        self.instance = instance
        table = instance.routing_table()
        self._distance: Dict[str, float] = dict(table.distances)

    def pick(
        self,
        enabled: Sequence[str],
        candidates_of: Dict[str, List[Tuple[str, Route]]],
    ) -> NodeDecision:
        """Pick the enabled node closest to an origin; its best update is final."""
        reachable = [node for node in enabled if node in self._distance]
        if not reachable:
            return NodeDecision(kind="none")
        chosen = min(reachable, key=lambda node: (self._distance[node], node))
        candidates = candidates_of.get(chosen, [])
        if not candidates:
            return NodeDecision(kind="none")
        # Equal-cost candidates lead to the same converged cost; the FIB model
        # re-derives the full ECMP next-hop set from the SPF table, so a single
        # representative suffices here.
        return NodeDecision(kind="deterministic", node=chosen, candidates=(candidates[0],))


class BgpDeterminism:
    """Guaranteed-winner detection for BGP (paper §4.1.2)."""

    def __init__(self, instance: BgpInstance) -> None:
        self.instance = instance
        self.network = instance.network
        self._global_max_local_pref = self._compute_global_max_local_pref()
        self._session_max_local_pref = self._compute_session_local_pref_bounds()
        self._min_as_hops = self._compute_min_as_hops()
        # affected(v) = {v} ∪ {n : v ∈ peers(n)} — the nodes whose stability
        # verdict can change when v's entry changes: v itself (its decidedness
        # and current rank) and every node that reads v's decidedness through
        # _best_future_rank.  Computed once; peers() is not assumed symmetric.
        affected: Dict[str, set] = {node: {node} for node in instance.nodes()}
        for node in instance.nodes():
            for peer in instance.peers(node):
                if peer in affected:
                    affected[peer].add(node)
        self._stability_affected: Dict[str, frozenset] = {
            node: frozenset(members) for node, members in affected.items()
        }

    # ------------------------------------------------------------------ bounds
    def _compute_global_max_local_pref(self) -> int:
        highest = 0
        for name in self.instance.nodes():
            config = self.network.device(name)
            default = config.bgp.default_local_pref if config.bgp else 100
            highest = max(highest, maximum_local_pref(config, default))
        return highest

    def _compute_session_local_pref_bounds(self) -> Dict[Tuple[str, str], int]:
        """Upper bound on the local preference node n can end up with via peer p."""
        bounds: Dict[Tuple[str, str], int] = {}
        for node in self.instance.nodes():
            config = self.network.device(node)
            if config.bgp is None:
                continue
            for session in config.bgp.neighbors:
                if session.is_ibgp(config.bgp.asn):
                    # Local preference is carried over iBGP; it could have been
                    # set anywhere in the AS.
                    bound = self._global_max_local_pref
                else:
                    bound = config.bgp.default_local_pref
                    if session.import_map is not None:
                        route_map = config.route_maps.get(session.import_map)
                        if route_map is not None:
                            for clause in route_map.clauses:
                                if clause.permit and clause.actions.local_preference is not None:
                                    bound = max(bound, clause.actions.local_preference)
                bounds[(node, session.peer)] = bound
        return bounds

    def _compute_min_as_hops(self) -> Dict[str, int]:
        """Minimum achievable AS-path length per node (0/1-weight Dijkstra).

        An advertisement gains one AS hop whenever it crosses an eBGP session
        and none over iBGP, so the minimum possible AS-path length of any
        route a node can ever hold is the 0/1-shortest distance from the
        origins in the session graph.  Prepending can only increase it, so
        this is a sound lower bound.
        """
        distances: Dict[str, int] = {}
        heap: List[Tuple[int, str]] = []
        for origin in self.instance.origins():
            distances[origin] = 0
            heapq.heappush(heap, (0, origin))
        while heap:
            dist, node = heapq.heappop(heap)
            if dist > distances.get(node, 1 << 30):
                continue
            node_asn = self.network.device(node).bgp.asn
            for peer in self.instance.peers(node):
                peer_asn = self.network.device(peer).bgp.asn
                step = 0 if peer_asn == node_asn else 1
                candidate = dist + step
                if candidate < distances.get(peer, 1 << 30):
                    distances[peer] = candidate
                    heapq.heappush(heap, (candidate, peer))
        return distances

    def _peer_can_ever_advertise(self, node: str, peer: str) -> bool:
        """Whether ``peer`` could ever send ``node`` an advertisement.

        A non-origin iBGP peer with no eBGP sessions that is not a route
        reflector for ``node`` can never advertise anything (standard iBGP
        loop prevention: iBGP-learned routes are not passed to iBGP peers), so
        it never contributes a "future" update.
        """
        if peer in set(self.instance.origins()):
            return True
        peer_cfg = self.network.device(peer)
        node_cfg = self.network.device(node)
        if peer_cfg.bgp is None or node_cfg.bgp is None:
            return False
        if peer_cfg.bgp.asn != node_cfg.bgp.asn:
            return True  # eBGP peer: may forward anything it learns.
        session = peer_cfg.bgp.neighbor(node)
        if session is not None and session.route_reflector_client:
            return True
        # iBGP peer: can only pass on routes it originated or learned via eBGP.
        return any(
            not neighbor.is_ibgp(peer_cfg.bgp.asn) for neighbor in peer_cfg.bgp.neighbors
        )

    # ------------------------------------------------------------------ analysis
    def _best_future_rank(self, node: str, state: RpvpState) -> Optional[Tuple]:
        """Lower bound on the rank of any update that could still arrive at ``node``.

        Only peers that have not yet decided (best path still ⊥) can produce
        *new* advertisements in a consistent execution; decided peers already
        contributed their final advertisement to the current candidate set.
        Returns None when no future update is possible.
        """
        best: Optional[Tuple] = None
        for peer in self.instance.peers(node):
            if state.best(peer) is not None:
                continue
            if peer not in self._min_as_hops:
                # The peer can never obtain a route at all.
                continue
            if not self._peer_can_ever_advertise(node, peer):
                continue
            config = self.network.device(node)
            session = config.bgp.neighbor(peer)
            peer_asn = self.network.device(peer).bgp.asn
            is_ibgp = peer_asn == config.bgp.asn
            local_pref_bound = self._session_max_local_pref.get(
                (node, peer), self._global_max_local_pref
            )
            as_path_bound = self._min_as_hops[peer] + (0 if is_ibgp else 1)
            igp_bound = 0 if not is_ibgp else int(self.instance.igp_cost(node, peer))
            rank = (
                -local_pref_bound,
                as_path_bound,
                0,  # MED lower bound
                1 if is_ibgp else 0,
                igp_bound,
            )
            if self.instance.deterministic_tiebreak:
                rank = rank + ("",)
            if best is None or rank < best:
                best = rank
        return best

    def session_rank_bound(self, node: str, peer: str) -> Optional[Tuple]:
        """Static lower bound on the rank of any route ``node`` can import from ``peer``.

        The per-peer body of :meth:`_best_future_rank` without the
        decidedness filter: local-pref upper bound for the session, 0/1
        AS-hop distance of the peer, IGP cost of the session.  Unlike the
        future-rank analysis this holds for *every* advertisement the peer
        could ever send — decided or not — which is what the transient
        partial-order reduction needs to prove a receiver's best path immune
        to further deliveries on the session.  Returns None when the peer can
        never advertise anything at all.
        """
        if peer not in self._min_as_hops:
            return None
        if not self._peer_can_ever_advertise(node, peer):
            return None
        config = self.network.device(node)
        peer_asn = self.network.device(peer).bgp.asn
        is_ibgp = peer_asn == config.bgp.asn
        local_pref_bound = self._session_max_local_pref.get(
            (node, peer), self._global_max_local_pref
        )
        as_path_bound = self._min_as_hops[peer] + (0 if is_ibgp else 1)
        igp_bound = 0 if not is_ibgp else int(self.instance.igp_cost(node, peer))
        rank = (
            -local_pref_bound,
            as_path_bound,
            0,  # MED lower bound
            1 if is_ibgp else 0,
            igp_bound,
        )
        if self.instance.deterministic_tiebreak:
            rank = rank + ("",)
        return rank

    def _node_is_unstable(self, node: str, state: RpvpState) -> bool:
        """Whether ``node`` is decided but could still receive a better update."""
        route = state.best(node)
        if route is None:
            return False
        future = self._best_future_rank(node, state)
        return future is not None and future < self.instance.cached_rank(node, route)

    def _scan_unstable(self, state: RpvpState) -> frozenset:
        """Unstable nodes by the naive all-nodes scan (roots, detached states)."""
        return frozenset(
            node
            for node, route in state.items()
            if route is not None and self._node_is_unstable(node, state)
        )

    def unstable_nodes(self, state: RpvpState) -> frozenset:
        """The decided nodes whose selection a future update could still beat.

        Cached on the state and maintained incrementally: an RPVP transition
        changes one node's entry, and a node's stability verdict reads only
        its own route plus the decidedness of its peers, so a child state's
        unstable set differs from its parent's only at the transitioned node
        and its reverse peers.  During a search the parent's cache is always
        present (the parent was evaluated first), so the per-state cost is
        O(deg) instead of an all-nodes scan.
        """
        if state._stability_token is self:
            return state._stability_cache
        # Walk up to the nearest ancestor this analyzer already evaluated,
        # accumulating the union of affected node sets along the way (the
        # check runs only on policy-pruned states, so the direct parent may
        # not carry a cache while a close ancestor does).  Give up once the
        # union stops being smaller than a full scan.
        cache: Optional[frozenset] = None
        affected: set = set()
        total = len(state.node_names)
        ancestor: Optional[RpvpState] = state
        while (
            ancestor._stability_token is not self
            and ancestor.parent is not None
            and ancestor.delta is not None
            and len(affected) < total
        ):
            slot, _old_route, _new_route = ancestor.delta
            members = self._stability_affected.get(ancestor.node_names[slot])
            if members is None:
                affected = None  # unknown node: force the full scan below
                break
            affected |= members
            ancestor = ancestor.parent
        if (
            affected is not None
            and len(affected) < total
            and ancestor._stability_token is self
        ):
            unstable = {
                node for node in ancestor._stability_cache if node not in affected
            }
            for node in affected:
                if self._node_is_unstable(node, state):
                    unstable.add(node)
            cache = frozenset(unstable)
        if cache is None:
            cache = self._scan_unstable(state)
        state._stability_token = self
        state._stability_cache = cache
        return cache

    def decisions_are_stable(self, state: RpvpState) -> bool:
        """Whether every decided node's selection could survive to convergence.

        Used when policy-based pruning wants to finish an execution early
        (paper §4.2): the partial execution is only *assumed* consistent, and
        accepting it is unsafe if some decided node could still receive a
        strictly better update (the node would then be forced to change its
        path, contradicting consistency).  A tie is fine — on ties a node
        keeps its current path.
        """
        return not self.unstable_nodes(state)

    def analyze(
        self,
        state: RpvpState,
        candidates_of: Dict[str, List[Tuple[str, Route]]],
        defer: Optional[Set[str]] = None,
    ) -> NodeDecision:
        """Classify the current step (see :class:`NodeDecision`).

        ``candidates_of`` maps each enabled (undecided) node to its currently
        best-ranked updates (the RPVP set ``U``).  A future update that merely
        *ties* with the currently best candidate does not block the decision:
        BGP's age-based tie-breaking keeps the already-received route (the
        paper's extension models exactly this partial-order ranking), so the
        present candidates are the possible winners.

        Nodes in ``defer`` (typically the policy's source nodes) are decided
        last, so that by the time a source executes, all of its potential
        advertisers have decided and every tie the policy cares about is
        branched over.
        """
        defer_set = defer or set()
        tied_choice: Optional[Tuple[str, Tuple[Tuple[str, Route], ...]]] = None
        ordering = sorted(candidates_of, key=lambda n: (n in defer_set, n))
        for node in ordering:
            candidates = candidates_of[node]
            if not candidates:
                continue
            current_rank = self.instance.cached_rank(node, candidates[0][1])
            future = self._best_future_rank(node, state)
            if future is not None and future < current_rank:
                # A strictly better update may still arrive; undecidable now.
                continue
            if len(candidates) == 1:
                return NodeDecision(
                    kind="deterministic", node=node, candidates=(candidates[0],)
                )
            if tied_choice is None:
                tied_choice = (node, tuple(candidates))
        if tied_choice is not None:
            node, candidates = tied_choice
            return NodeDecision(kind="tied", node=node, candidates=candidates)
        return NodeDecision(kind="none")


def independence_groups(
    instance: PathVectorInstance,
    state: RpvpState,
    enabled: Sequence[str],
) -> List[List[str]]:
    """Partition the enabled nodes into decision-independent groups (§4.1.3).

    Two undecided nodes are independent when every advertisement path between
    them in the peer graph crosses a node that has already made its decision
    (and therefore will not relay further updates).  Concretely: compute the
    connected components of the peer graph restricted to undecided nodes; two
    enabled nodes in different components are independent, so exploring them
    in a single fixed order (component by component) is sufficient.

    The partition itself lives with the rest of the partial-order-reduction
    machinery (:func:`repro.modelcheck.por.node_independence_groups`); this
    wrapper binds it to the RPVP notion of "undecided" (best path still ⊥).
    """
    from repro.modelcheck.por import node_independence_groups

    undecided = {node for node, route in state.items() if route is None}
    return node_independence_groups(instance.peers, undecided, enabled)
