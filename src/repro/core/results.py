"""Verification results: per-PEC run records and the aggregated verdict."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.dataplane import DataPlane
from repro.modelcheck.explorer import ExplorationStatistics
from repro.modelcheck.trail import Trail
from repro.pec.classes import PacketEquivalenceClass
from repro.topology.failures import FailureScenario


@dataclass
class Violation:
    """One policy violation: which policy, where, and how to reproduce it."""

    policy: str
    pec_index: int
    pec_description: str
    failure_description: str
    message: str
    trail: Optional[Trail] = None

    def render(self) -> str:
        lines = [
            f"policy    : {self.policy}",
            f"PEC       : {self.pec_description}",
            f"failures  : {self.failure_description}",
            f"violation : {self.message}",
        ]
        if self.trail is not None and len(self.trail):
            lines.append(self.trail.render())
        return "\n".join(lines)


@dataclass
class TaskFailure:
    """One engine task that exhausted its retries (the ``errors`` section).

    A failed task never aborts a verify: the supervisor records this
    structured entry and the run degrades to a *partial* result
    (:attr:`VerificationResult.complete` is False) whose ``errors`` name
    exactly the tasks that produced no runs.

    ``kind`` mirrors :class:`repro.engine.graph.TaskError`: ``"exception"``,
    ``"timeout"``, ``"crash"`` or ``"upstream"``.
    """

    task_id: int
    pec_index: int
    failure_description: str
    kind: str
    message: str
    attempts: int
    task_kind: str = "verify"

    def render(self) -> str:
        return (
            f"task error : {self.kind} after {self.attempts} attempt(s)\n"
            f"task       : #{self.task_id} ({self.task_kind}, PEC {self.pec_index}, "
            f"failures {self.failure_description})\n"
            f"message    : {self.message}"
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "task_id": self.task_id,
            "pec_index": self.pec_index,
            "failures": self.failure_description,
            "kind": self.kind,
            "message": self.message,
            "attempts": self.attempts,
            "task_kind": self.task_kind,
        }


@dataclass
class PecRunResult:
    """Outcome of analysing one PEC under one failure scenario."""

    pec_index: int
    failure: FailureScenario
    converged_states: int = 0
    checked_states: int = 0
    suppressed_states: int = 0
    violations: List[Violation] = field(default_factory=list)
    statistics: Optional[ExplorationStatistics] = None
    data_planes: List[DataPlane] = field(default_factory=list)

    @property
    def holds(self) -> bool:
        return not self.violations


@dataclass
class VerificationResult:
    """The aggregated result of a verification task."""

    policy_names: List[str]
    holds: bool = True
    violations: List[Violation] = field(default_factory=list)
    pec_runs: List[PecRunResult] = field(default_factory=list)
    pecs_analyzed: int = 0
    failure_scenarios: int = 0
    elapsed_seconds: float = 0.0

    # Aggregate statistics across all explorations.
    total_states_expanded: int = 0
    total_unique_states: int = 0
    total_converged_states: int = 0
    approximate_memory_bytes: int = 0

    #: Populated by the incremental re-verification service
    #: (:class:`repro.incremental.service.IncrementalRunStats`): cache-hit /
    #: recompute accounting for this run.  None for cold ``Plankton.verify``.
    incremental: Optional[object] = None

    #: Tasks that exhausted their retries: the verify degraded to a partial
    #: result instead of raising.  Empty on a complete run.
    errors: List[TaskFailure] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        """Whether every expanded task produced a result (no ``errors``)."""
        return not self.errors

    def record(self, run: PecRunResult) -> None:
        """Fold one PEC run into the aggregate."""
        self.pec_runs.append(run)
        self.violations.extend(run.violations)
        if run.violations:
            self.holds = False
        self.total_converged_states += run.converged_states
        if run.statistics is not None:
            self.total_states_expanded += run.statistics.states_expanded
            self.total_unique_states += run.statistics.unique_states
            self.approximate_memory_bytes += run.statistics.approximate_memory_bytes

    def merge(self, other: "VerificationResult") -> None:
        """Fold another (partial) result into this one.

        Used by the execution engine to combine per-task partial results:
        run lists and violations are concatenated in the order given, state
        counters are summed, and the verdict holds only if both hold.
        Wall-clock fields are *not* summed — partials produced by concurrent
        workers overlap in time, so the longer of the two is kept and the
        coordinator's own clock remains authoritative.  ``pecs_analyzed``
        and ``failure_scenarios`` are sized by the coordinator up front, so
        the larger value wins as well.
        """
        self.pec_runs.extend(other.pec_runs)
        self.violations.extend(other.violations)
        self.errors.extend(other.errors)
        self.holds = self.holds and other.holds
        self.pecs_analyzed = max(self.pecs_analyzed, other.pecs_analyzed)
        self.failure_scenarios = max(self.failure_scenarios, other.failure_scenarios)
        self.elapsed_seconds = max(self.elapsed_seconds, other.elapsed_seconds)
        self.total_states_expanded += other.total_states_expanded
        self.total_unique_states += other.total_unique_states
        self.total_converged_states += other.total_converged_states
        self.approximate_memory_bytes += other.approximate_memory_bytes

    def first_violation(self) -> Optional[Violation]:
        """The first recorded violation, if any."""
        return self.violations[0] if self.violations else None

    def summary(self) -> str:
        """One-paragraph human-readable summary."""
        verdict = "HOLDS" if self.holds else f"VIOLATED ({len(self.violations)} violation(s))"
        if self.errors:
            verdict += f" [PARTIAL: {len(self.errors)} task(s) failed]"
        return (
            f"policies {', '.join(self.policy_names)}: {verdict}; "
            f"{self.pecs_analyzed} PEC(s), {self.failure_scenarios} failure scenario(s), "
            f"{self.total_converged_states} converged state(s) checked, "
            f"{self.total_states_expanded} state expansions, "
            f"{self.elapsed_seconds:.3f}s"
        )
