"""Plankton core: the configuration verifier built on PECs + model checking."""

from repro.core.options import OptimizationFlags, PlanktonOptions
from repro.core.results import PecRunResult, VerificationResult, Violation
from repro.core.verifier import Plankton, verify

__all__ = [
    "OptimizationFlags",
    "PlanktonOptions",
    "PecRunResult",
    "VerificationResult",
    "Violation",
    "Plankton",
    "verify",
]
