"""Dependency-aware scheduling helpers.

The dependency-aware scheduler (paper §3.2) orders PEC verification runs so
that a PEC is analysed only after every PEC it depends on.  The SCC
condensation and the ordering itself live in :mod:`repro.pec.dependencies`;
this module provides the closure of needed PECs and the restriction of the
SCC schedule to them.

The task-level machinery that used to live here (a process-pool map whose
blanket ``except Exception`` silently fell back to serial execution and
masked worker bugs) migrated into the execution engine: see
:mod:`repro.engine.backends` for the backend implementations, which only
degrade to serial on genuine pickling failures and surface everything else.
"""

from __future__ import annotations

from typing import Iterable, List, Set

from repro.pec.dependencies import PecDependencyGraph


def dependency_closure(graph: PecDependencyGraph, roots: Iterable[int]) -> Set[int]:
    """All PEC indices needed to analyse ``roots``: the roots plus everything
    they transitively depend on."""
    needed: Set[int] = set()
    stack = list(roots)
    while stack:
        index = stack.pop()
        if index in needed:
            continue
        needed.add(index)
        stack.extend(graph.dependencies_of(index))
    return needed


def restrict_schedule(
    graph: PecDependencyGraph, needed: Set[int]
) -> List[List[int]]:
    """The SCC schedule restricted to the needed PECs (order preserved)."""
    schedule = []
    for scc in graph.schedule():
        members = [index for index in scc if index in needed]
        if members:
            schedule.append(members)
    return schedule
