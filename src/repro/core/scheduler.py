"""Dependency-aware scheduling helpers and the parallel task runner.

The dependency-aware scheduler (paper §3.2) orders PEC verification runs so
that a PEC is analysed only after every PEC it depends on, and runs mutually
independent PECs in parallel worker processes.  The SCC condensation and the
ordering itself live in :mod:`repro.pec.dependencies`; this module provides
the task-level machinery: the closure of needed PECs, and a process-pool map
over independent (PEC, failure scenario) tasks.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple, TypeVar

from repro.pec.classes import PacketEquivalenceClass
from repro.pec.dependencies import PecDependencyGraph

Task = TypeVar("Task")
Result = TypeVar("Result")


def dependency_closure(graph: PecDependencyGraph, roots: Iterable[int]) -> Set[int]:
    """All PEC indices needed to analyse ``roots``: the roots plus everything
    they transitively depend on."""
    needed: Set[int] = set()
    stack = list(roots)
    while stack:
        index = stack.pop()
        if index in needed:
            continue
        needed.add(index)
        stack.extend(graph.dependencies_of(index))
    return needed


def restrict_schedule(
    graph: PecDependencyGraph, needed: Set[int]
) -> List[List[int]]:
    """The SCC schedule restricted to the needed PECs (order preserved)."""
    schedule = []
    for scc in graph.schedule():
        members = [index for index in scc if index in needed]
        if members:
            schedule.append(members)
    return schedule


def run_tasks(
    tasks: Sequence[Task],
    worker: Callable[[Task], Result],
    cores: int = 1,
) -> List[Result]:
    """Run ``worker`` over ``tasks``, optionally across worker processes.

    Each verification run is a separate process in the paper's prototype; here
    a :class:`~concurrent.futures.ProcessPoolExecutor` plays that role.  Any
    failure to parallelise (e.g. unpicklable closures in user policies) falls
    back to serial execution so verification always completes.
    """
    if cores <= 1 or len(tasks) <= 1:
        return [worker(task) for task in tasks]
    try:
        with ProcessPoolExecutor(max_workers=cores) as pool:
            return list(pool.map(worker, tasks))
    except Exception:
        return [worker(task) for task in tasks]
