"""Verification reports: structured (JSON) and human-readable (Markdown) output.

The verifier's :class:`~repro.core.results.VerificationResult` carries
everything an operator or a CI pipeline needs — verdict, per-PEC runs,
exploration statistics, violations with event trails — but as Python objects.
This module renders those results into artefacts that can be archived next to
the configuration change that was checked:

* ``result_to_dict`` / JSON — for machines (dashboards, CI gates),
* ``render_markdown`` — for humans (change-review comments, runbooks),
* ``write_report`` — dispatches on the file suffix.

The CLI's ``verify --report FILE`` option uses these helpers.
"""

from __future__ import annotations

import json
import time
from pathlib import Path as FilePath
from typing import Dict, List, Optional, Union

from repro.core.results import PecRunResult, VerificationResult, Violation

PathLike = Union[str, FilePath]


# --------------------------------------------------------------------------- structured form
def violation_to_dict(violation: Violation, include_trail: bool = True) -> Dict[str, object]:
    """The JSON-serialisable form of one violation."""
    document: Dict[str, object] = {
        "policy": violation.policy,
        "pec_index": violation.pec_index,
        "pec": violation.pec_description,
        "failures": violation.failure_description,
        "message": violation.message,
    }
    if include_trail and violation.trail is not None:
        document["trail"] = [
            {"kind": step.kind, "description": step.description}
            for step in violation.trail.steps
        ]
        if violation.trail.data_plane_dump:
            document["data_plane"] = violation.trail.data_plane_dump
    return document


def pec_run_to_dict(run: PecRunResult) -> Dict[str, object]:
    """The JSON-serialisable form of one per-PEC run."""
    document: Dict[str, object] = {
        "pec_index": run.pec_index,
        "failed_links": list(run.failure.failed_links),
        "converged_states": run.converged_states,
        "checked_states": run.checked_states,
        "suppressed_states": run.suppressed_states,
        "violations": len(run.violations),
    }
    if run.statistics is not None:
        document["states_expanded"] = run.statistics.states_expanded
        document["unique_states"] = run.statistics.unique_states
        reduction = getattr(run.statistics, "reduction", None)
        if reduction is not None:
            document["reduction"] = reduction.as_dict()
    return document


def result_to_dict(
    result: VerificationResult,
    include_trails: bool = True,
    include_pec_runs: bool = True,
) -> Dict[str, object]:
    """The complete JSON-serialisable form of a verification result."""
    document: Dict[str, object] = {
        "policies": list(result.policy_names),
        "holds": result.holds,
        "pecs_analyzed": result.pecs_analyzed,
        "failure_scenarios": result.failure_scenarios,
        "converged_states": result.total_converged_states,
        "states_expanded": result.total_states_expanded,
        "unique_states": result.total_unique_states,
        "approximate_memory_bytes": result.approximate_memory_bytes,
        "elapsed_seconds": round(result.elapsed_seconds, 6),
        "violations": [
            violation_to_dict(violation, include_trail=include_trails)
            for violation in result.violations
        ],
    }
    if include_pec_runs:
        document["pec_runs"] = [pec_run_to_dict(run) for run in result.pec_runs]
    if result.incremental is not None:
        document["incremental"] = result.incremental.as_dict()
    if result.errors:
        # Present only on partial results, so complete runs keep their
        # historical document shape byte-for-byte.
        document["complete"] = False
        document["errors"] = [failure.as_dict() for failure in result.errors]
    return document


def render_json(result: VerificationResult, indent: int = 2) -> str:
    """The result as a JSON document."""
    return json.dumps(result_to_dict(result), indent=indent) + "\n"


# --------------------------------------------------------------------------- markdown
def render_markdown(result: VerificationResult, title: Optional[str] = None) -> str:
    """The result as a Markdown report (verdict, summary table, violations)."""
    lines: List[str] = []
    lines.append(f"# {title or 'Verification report'}")
    lines.append("")
    verdict = "**HOLDS**" if result.holds else f"**VIOLATED** ({len(result.violations)} violation(s))"
    if result.errors:
        verdict += f" — **PARTIAL** ({len(result.errors)} task(s) failed)"
    lines.append(f"Policies `{', '.join(result.policy_names)}`: {verdict}")
    lines.append("")

    lines.append("| metric | value |")
    lines.append("|---|---|")
    lines.append(f"| PECs analysed | {result.pecs_analyzed} |")
    lines.append(f"| failure scenarios | {result.failure_scenarios} |")
    lines.append(f"| converged states checked | {result.total_converged_states} |")
    lines.append(f"| state expansions | {result.total_states_expanded} |")
    lines.append(f"| elapsed | {result.elapsed_seconds:.3f} s |")
    incremental = result.incremental
    if incremental is not None:
        lines.append(f"| PECs served from cache | {incremental.pecs_from_cache} |")
        lines.append(f"| PECs recomputed | {incremental.pecs_recomputed} |")
        lines.append(
            f"| tasks cached / recomputed | "
            f"{incremental.tasks_from_cache} / {incremental.tasks_recomputed} |"
        )
        if incremental.delta_summary:
            lines.append(f"| config delta | {incremental.delta_summary} |")
    lines.append("")

    if result.violations:
        lines.append("## Violations")
        lines.append("")
        for number, violation in enumerate(result.violations, start=1):
            lines.append(f"### {number}. {violation.policy}")
            lines.append("")
            lines.append(f"* PEC: `{violation.pec_description}`")
            lines.append(f"* failures: {violation.failure_description}")
            lines.append(f"* {violation.message}")
            if violation.trail is not None and len(violation.trail):
                lines.append("")
                lines.append("Event trail:")
                lines.append("")
                lines.append("```")
                lines.append(violation.trail.render())
                lines.append("```")
            lines.append("")
    else:
        lines.append("No violations were found in any explored converged state.")
        lines.append("")
    _append_task_failures(lines, result.errors)
    return "\n".join(lines)


def _append_task_failures(lines: List[str], errors) -> None:
    """The shared "Task failures" Markdown section of partial results."""
    if not errors:
        return
    lines.append("## Task failures")
    lines.append("")
    lines.append(
        "The verdict above covers only the tasks that completed; the "
        "following tasks exhausted their retries and produced no result."
    )
    lines.append("")
    lines.append("| task | kind | PEC | failures | error | attempts |")
    lines.append("|---|---|---|---|---|---|")
    for failure in errors:
        message = failure.message.replace("|", "\\|").replace("\n", " ")
        lines.append(
            f"| {failure.task_id} | {failure.task_kind} | {failure.pec_index} | "
            f"{failure.failure_description} | {failure.kind}: {message} | "
            f"{failure.attempts} |"
        )
    lines.append("")


# --------------------------------------------------------------------------- transient reports
def transient_result_to_dict(result) -> Dict[str, object]:
    """The JSON-serialisable form of one transient exploration result
    (:class:`repro.transient.TransientAnalysisResult`)."""
    document: Dict[str, object] = {
        "holds": result.holds,
        "states_explored": result.states_explored,
        "converged_states": result.converged_states,
        "max_depth_reached": result.max_depth_reached,
        "truncated": result.truncated,
        "elapsed_seconds": round(result.elapsed_seconds, 6),
        "violations": [
            {
                "property": violation.property_name,
                "message": violation.message,
                "depth": violation.depth,
                "converged": violation.converged,
                "witness": list(violation.witness),
            }
            for violation in result.violations
        ],
    }
    if result.reduction is not None:
        document["reduction"] = result.reduction.as_dict()
    return document


def transient_campaign_to_dict(campaign) -> Dict[str, object]:
    """The JSON-serialisable form of a transient campaign
    (:class:`repro.transient.TransientCampaignResult`)."""
    runs: List[Dict[str, object]] = []
    for run in campaign.runs:
        entry: Dict[str, object] = {
            "pec_index": run.pec_index,
            "failed_links": list(run.failure.failed_links),
            "prefix": run.prefix,
            "result": transient_result_to_dict(run.result),
        }
        scenario = getattr(run, "scenario", None)
        if scenario is not None:
            entry["scenario"] = scenario
        runs.append(entry)
    document: Dict[str, object] = {
        "holds": campaign.holds,
        "failure_scenarios": campaign.failure_scenarios,
        "elapsed_seconds": round(campaign.elapsed_seconds, 6),
        "runs": runs,
    }
    event_scenarios = getattr(campaign, "event_scenarios", 0)
    if event_scenarios:
        document["event_scenarios"] = event_scenarios
    incremental = getattr(campaign, "incremental", None)
    if incremental is not None:
        document["incremental"] = incremental.as_dict()
    errors = getattr(campaign, "errors", [])
    if errors:
        document["complete"] = False
        document["errors"] = [failure.as_dict() for failure in errors]
    return document


def render_transient_markdown(campaign, title: Optional[str] = None) -> str:
    """A transient campaign as a Markdown report.

    One row per (failure scenario, prefix) run — verdict, states explored,
    converged states, whether the budget truncated the search, and the POR
    transition-reduction ratio — followed by the rendered violations.
    """
    lines: List[str] = []
    lines.append(f"# {title or 'Transient analysis report'}")
    lines.append("")
    verdict = (
        "**HOLDS**"
        if campaign.holds
        else f"**VIOLATED** ({len(campaign.violations)} violation(s))"
    )
    campaign_errors = getattr(campaign, "errors", [])
    if campaign_errors:
        verdict += f" — **PARTIAL** ({len(campaign_errors)} task(s) failed)"
    lines.append(f"Transient properties: {verdict}")
    lines.append(f"Failure scenarios: {campaign.failure_scenarios}")
    event_scenarios = getattr(campaign, "event_scenarios", 0)
    if event_scenarios:
        lines.append(f"Event scenarios: {event_scenarios}")
    incremental = getattr(campaign, "incremental", None)
    if incremental is not None:
        lines.append("")
        lines.append(
            f"Cache: {incremental.pecs_from_cache}/{incremental.pecs_total} PEC(s) "
            f"served from cache, {incremental.pecs_recomputed} recomputed"
            + (f" — {incremental.delta_summary}" if incremental.delta_summary else "")
        )
    lines.append("")
    # The scenario column appears only when some run carries one, so plain
    # failure campaigns keep their historical table shape.
    with_scenarios = any(
        getattr(run, "scenario", None) is not None for run in campaign.runs
    )
    scenario_header = " scenario |" if with_scenarios else ""
    lines.append(
        f"| failures | prefix |{scenario_header} verdict | states | converged "
        "| truncated | reduction |"
    )
    lines.append("|---|---|" + ("-" * 3 + "|" if with_scenarios else "") + "---|---|---|---|---|")
    for run in campaign.runs:
        failures = ", ".join(str(link) for link in run.failure.failed_links) or "none"
        result = run.result
        reduction = (
            f"{result.reduction.transition_reduction_ratio():.1f}x "
            f"({result.reduction.mode})"
            if result.reduction is not None
            else "-"
        )
        scenario_cell = (
            f" {getattr(run, 'scenario', None) or 'none'} |" if with_scenarios else ""
        )
        lines.append(
            f"| {failures} | `{run.prefix}` |{scenario_cell} "
            f"{'HOLDS' if result.holds else 'VIOLATED'} | "
            f"{result.states_explored} | {result.converged_states} | "
            f"{'yes' if result.truncated else 'no'} | {reduction} |"
        )
    lines.append("")
    if campaign.violations:
        lines.append("## Violations")
        lines.append("")
        for number, violation in enumerate(campaign.violations, start=1):
            lines.append(f"### {number}. {violation.property_name}")
            lines.append("")
            lines.append("```")
            lines.append(violation.render())
            lines.append("```")
            lines.append("")
    else:
        lines.append("No transient violations were found in any explored state.")
        lines.append("")
    _append_task_failures(lines, campaign_errors)
    return "\n".join(lines)


# --------------------------------------------------------------------------- service documents
def verify_document(result: VerificationResult, policy_name: str) -> Dict[str, object]:
    """The compact ``verify --json`` document of one verification result.

    Shared by the CLI's local path and the ``repro serve`` job executor so a
    remote ``--json`` run is byte-identical to the in-process one.
    """
    document: Dict[str, object] = {
        "holds": result.holds,
        "policy": policy_name,
        "pecs_analyzed": result.pecs_analyzed,
        "failure_scenarios": result.failure_scenarios,
        "converged_states": result.total_converged_states,
        "states_expanded": result.total_states_expanded,
        "elapsed_seconds": round(result.elapsed_seconds, 6),
        "violations": [
            {
                "policy": violation.policy,
                "pec": violation.pec_description,
                "failures": violation.failure_description,
                "message": violation.message,
            }
            for violation in result.violations
        ],
    }
    if result.incremental is not None:
        document["incremental"] = result.incremental.as_dict()
    if result.errors:
        document["complete"] = False
        document["errors"] = [failure.as_dict() for failure in result.errors]
    return document


def job_to_dict(job) -> Dict[str, object]:
    """The ``GET /v1/jobs/{id}`` document of one :class:`repro.serve.Job`.

    Duck-typed (no serve import) so client-side tooling can render job
    documents without pulling the server package into the process.
    """
    document: Dict[str, object] = {
        "job": job.id,
        "namespace": job.namespace,
        "kind": job.kind,
        "state": job.state,
        "sequence": job.sequence,
        "created_at": job.created_at,
    }
    if job.started_at is not None:
        document["started_at"] = job.started_at
        finished = job.finished_at
        document["elapsed_seconds"] = round(
            (finished if finished is not None else time.time()) - job.started_at, 6
        )
    if job.finished_at is not None:
        document["finished_at"] = job.finished_at
    if job.error is not None:
        document["error"] = job.error
    if job.result is not None:
        document["result"] = job.result
    return document


def metrics_to_dict(metrics) -> Dict[str, object]:
    """The ``GET /metrics`` document of a
    :class:`repro.serve.metrics.ServerMetrics` instance (duck-typed)."""
    return {
        "uptime_seconds": round(metrics.uptime_seconds(), 3),
        "jobs_submitted": metrics.jobs_submitted,
        "jobs_rejected": metrics.jobs_rejected,
        "namespaces": {
            name: counters.as_dict()
            for name, counters in metrics.namespace_counters().items()
        },
    }


# --------------------------------------------------------------------------- files
def write_transient_report(campaign, path: PathLike, title: Optional[str] = None) -> FilePath:
    """Write a transient campaign to ``path``; JSON for ``.json``, Markdown
    otherwise (the same suffix dispatch as :func:`write_report`)."""
    file_path = FilePath(path)
    if file_path.suffix.lower() == ".json":
        file_path.write_text(
            json.dumps(transient_campaign_to_dict(campaign), indent=2) + "\n"
        )
    else:
        file_path.write_text(render_transient_markdown(campaign, title=title))
    return file_path


def write_report(
    result: VerificationResult,
    path: PathLike,
    title: Optional[str] = None,
) -> FilePath:
    """Write the result to ``path``; JSON for ``.json``, Markdown otherwise."""
    file_path = FilePath(path)
    if file_path.suffix.lower() == ".json":
        file_path.write_text(render_json(result))
    else:
        file_path.write_text(render_markdown(result, title=title))
    return file_path
