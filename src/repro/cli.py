"""Command-line interface to the Plankton reproduction.

The CLI mirrors how configuration verifiers are run in practice: the operator
points the tool at a topology file and the device configurations, names the
policy to check and the failure environment, and reads a verdict plus a
counterexample trail when the check fails.

Subcommands:

``verify``
    Run the Plankton verifier against one or more policies.  Exit code 0 when
    every policy holds, 1 when a violation is found, 2 on input errors or
    when the run degraded to a partial result (some tasks exhausted their
    retries; see the report's ``errors`` section).

``pecs``
    Print the Packet Equivalence Class partition and the PEC dependency graph
    (paper §3.1/§3.2) without running any verification.

``simulate``
    Run the Batfish-style single-execution simulation and dump the resulting
    FIBs — useful to inspect what "the" converged data plane looks like, with
    the usual caveat that other convergences may exist.

``trace``
    Follow the forwarding branches of one packet (source device + destination
    address) through the simulated data plane.

``transient``
    Explore SPVP message interleavings and check transient properties
    (micro-loops, momentary black holes) in every reachable state, with the
    partial-order reduction, frontier and witness-minimisation knobs of
    :mod:`repro.transient` exposed as flags.

``diff-verify``
    Verify an old configuration, then *incrementally* re-verify a new one:
    the structural delta is computed, only the impacted Packet Equivalence
    Classes are recomputed, and clean results are merged from the cache
    (:mod:`repro.incremental`).  ``--cache-dir`` persists the cache so a
    later invocation restarts warm; the same flag on ``verify`` gives the
    warm-restart workflow for a single configuration.

Examples::

    python -m repro verify --topology campus.topo --config campus.cfg \\
        --policy reachability --sources acc0,acc1 --max-failures 1
    python -m repro verify --topology campus.topo --config campus.cfg \\
        --policy loop --cache-dir .plankton-cache
    python -m repro diff-verify old.cfg new.cfg --topology campus.topo \\
        --policy loop --cache-dir .plankton-cache
    python -m repro transient --topology dc.topo --config dc.cfg \\
        --fail-session agg0_0,edge0_0 --frontier priority
    python -m repro pecs --topology campus.topo --config campus.cfg
    python -m repro trace --topology campus.topo --config campus.cfg \\
        --source acc0 --destination 10.1.0.9
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from pathlib import Path as FilePath
from typing import Dict, List, Optional, Sequence

from repro.baselines.simulation import SimulationVerifier
from repro.config.objects import NetworkConfig
from repro.config.parser import parse_config, parse_device_config
from repro.core.options import OptimizationFlags, PlanktonOptions
from repro.core.verifier import Plankton
from repro.dataplane.forwarding import trace_paths
from repro.engine import BACKEND_CHOICES
from repro.exceptions import ReproError
from repro.netaddr import Prefix, ip_to_int
from repro.pec.classes import compute_pecs
from repro.pec.dependencies import build_dependency_graph
from repro.policies import (
    BlackHoleFreedom,
    BoundedPathLength,
    LoopFreedom,
    MultipathConsistency,
    PathConsistency,
    Policy,
    Reachability,
    Segmentation,
    Waypoint,
)
from repro.topology.io import load_topology

#: Exit codes (documented in ``docs/cli.md``).  A *partial* result — every
#: completed task holds but some tasks exhausted their retries — exits with
#: ``EXIT_ERROR``: "we could not prove it holds" must never look like
#: "it holds" to a CI gate.  A violation wins over partiality (a found
#: counterexample is definitive regardless of other tasks' fate).
EXIT_HOLDS = 0
EXIT_VIOLATION = 1
EXIT_ERROR = 2


class CliError(ReproError):
    """Raised for bad command-line input; reported without a traceback."""


def _configure_logging(verbosity: int) -> None:
    """Surface the engine's structured event stream (``repro.*`` loggers).

    ``-v`` shows supervision events at INFO/WARNING (retries, timeouts,
    pool rebuilds, cache cold starts); ``-vv`` adds DEBUG (per-task
    start/finish).  Without ``-v`` only warnings and errors reach stderr —
    so a degraded run is never silent, even unasked.
    """
    logger = logging.getLogger("repro")
    level = (
        logging.WARNING
        if verbosity <= 0
        else logging.INFO if verbosity == 1 else logging.DEBUG
    )
    logger.setLevel(level)
    if not any(isinstance(h, logging.StreamHandler) for h in logger.handlers):
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(logging.Formatter("%(levelname)s %(name)s: %(message)s"))
        logger.addHandler(handler)


# --------------------------------------------------------------------------- input loading
def _load_network(args: argparse.Namespace) -> NetworkConfig:
    """Build the :class:`NetworkConfig` named by ``--topology`` and ``--config``/``--config-dir``."""
    topology = load_topology(args.topology)
    if getattr(args, "config", None):
        text = FilePath(args.config).read_text()
        return parse_config(topology, text)
    if getattr(args, "config_dir", None):
        directory = FilePath(args.config_dir)
        if not directory.is_dir():
            raise CliError(f"--config-dir {directory} is not a directory")
        network = NetworkConfig(topology)
        config_files = sorted(directory.glob("*.cfg"))
        if not config_files:
            raise CliError(f"no *.cfg files in {directory}")
        for config_file in config_files:
            device_name = config_file.stem
            if device_name not in topology:
                raise CliError(
                    f"config file {config_file.name} does not match any topology device"
                )
            network.set_device(parse_device_config(device_name, config_file.read_text()))
        network.validate()
        return network
    raise CliError("one of --config or --config-dir is required")


def _split_list(value: Optional[str]) -> List[str]:
    """Split a comma-separated CLI value, dropping empty entries."""
    if not value:
        return []
    return [item.strip() for item in value.split(",") if item.strip()]


def _parse_destination_prefix(value: Optional[str]) -> Optional[Prefix]:
    if value is None:
        return None
    text = value if "/" in value else value + "/32"
    try:
        return Prefix(text)
    except Exception as exc:
        raise CliError(f"bad destination prefix {value!r}: {exc}") from exc


def _build_policy(args: argparse.Namespace, network: NetworkConfig) -> Policy:
    """Instantiate the policy selected by ``--policy`` and its options."""
    sources = _split_list(args.sources)
    waypoints = _split_list(args.waypoints)
    destination = _parse_destination_prefix(args.destination_prefix)
    for name in sources + waypoints:
        if name not in network.topology:
            raise CliError(f"unknown device {name!r} in --sources/--waypoints")

    protected = _split_list(getattr(args, "protected", None))
    for name in protected:
        if name not in network.topology:
            raise CliError(f"unknown device {name!r} in --protected")

    kind = args.policy
    if kind == "segmentation":
        if not sources or not protected:
            raise CliError("--policy segmentation requires --sources and --protected")
        return Segmentation(sources=sources, protected=protected, destination_prefix=destination)
    if kind == "reachability":
        return Reachability(
            sources=sources or None,
            destination_prefix=destination,
            require_all_branches=not args.any_branch,
        )
    if kind == "loop":
        return LoopFreedom(destination_prefix=destination)
    if kind == "blackhole":
        return BlackHoleFreedom(
            destination_prefix=destination,
            only_on_paths_from=sources or None,
        )
    if kind == "waypoint":
        if not sources or not waypoints:
            raise CliError("--policy waypoint requires --sources and --waypoints")
        return Waypoint(sources=sources, waypoints=waypoints, destination_prefix=destination)
    if kind == "bounded-path-length":
        if args.max_hops is None:
            raise CliError("--policy bounded-path-length requires --max-hops")
        return BoundedPathLength(
            max_hops=args.max_hops, sources=sources or None, destination_prefix=destination
        )
    if kind == "multipath-consistency":
        return MultipathConsistency(sources=sources or None, destination_prefix=destination)
    if kind == "path-consistency":
        if len(sources) < 2:
            raise CliError("--policy path-consistency requires at least two --sources devices")
        return PathConsistency(device_group=sources, destination_prefix=destination)
    raise CliError(f"unknown policy {kind!r}")


def _build_options(args: argparse.Namespace) -> PlanktonOptions:
    flags = OptimizationFlags.none_enabled() if args.no_optimizations else OptimizationFlags()
    return PlanktonOptions(
        max_failures=args.max_failures,
        cores=args.cores,
        backend=args.backend,
        stop_at_first_violation=not args.all_violations,
        optimizations=flags,
        task_timeout=args.task_timeout,
        task_retries=args.task_retries,
    )


# --------------------------------------------------------------------------- subcommands
def _verify_document(result, policy) -> Dict[str, object]:
    """The ``--json`` document of one verification result."""
    document: Dict[str, object] = {
        "holds": result.holds,
        "policy": policy.name,
        "pecs_analyzed": result.pecs_analyzed,
        "failure_scenarios": result.failure_scenarios,
        "converged_states": result.total_converged_states,
        "states_expanded": result.total_states_expanded,
        "elapsed_seconds": round(result.elapsed_seconds, 6),
        "violations": [
            {
                "policy": violation.policy,
                "pec": violation.pec_description,
                "failures": violation.failure_description,
                "message": violation.message,
            }
            for violation in result.violations
        ],
    }
    if result.incremental is not None:
        document["incremental"] = result.incremental.as_dict()
    if result.errors:
        document["complete"] = False
        document["errors"] = [failure.as_dict() for failure in result.errors]
    return document


def _print_verify_result(args: argparse.Namespace, result, policy) -> None:
    if args.json:
        print(json.dumps(_verify_document(result, policy), indent=2))
    else:
        print(result.summary())
        if result.incremental is not None:
            print(result.incremental.describe())
        for violation in result.violations:
            print()
            print(violation.render())
        for failure in result.errors:
            print()
            print(failure.render())


def _verify_exit_code(result) -> int:
    """Verdict → exit code: violation beats partial beats holds."""
    if not result.holds:
        return EXIT_VIOLATION
    if getattr(result, "errors", None):
        return EXIT_ERROR
    return EXIT_HOLDS


def _cmd_verify(args: argparse.Namespace) -> int:
    network = _load_network(args)
    policy = _build_policy(args, network)
    options = _build_options(args)
    if getattr(args, "cache_dir", None):
        from repro.incremental import IncrementalVerifier

        result = IncrementalVerifier(network, options, cache_dir=args.cache_dir).verify(
            policy
        )
    else:
        result = Plankton(network, options).verify(policy)

    if args.report:
        from repro.reporting import write_report

        write_report(result, args.report, title=f"{policy.name} on {network.topology.name}")

    _print_verify_result(args, result, policy)
    return _verify_exit_code(result)


def _cmd_diff_verify(args: argparse.Namespace) -> int:
    from repro.incremental import IncrementalVerifier

    old_network = parse_config(load_topology(args.topology), FilePath(args.old_config).read_text())
    new_network = parse_config(load_topology(args.topology), FilePath(args.new_config).read_text())
    policy = _build_policy(args, new_network)
    options = _build_options(args)

    service = IncrementalVerifier(
        old_network, options, cache_dir=getattr(args, "cache_dir", None) or None
    )
    old_result = service.verify(policy)
    delta = service.update(new_network)
    new_result = service.verify(policy)

    if args.report:
        from repro.reporting import write_report

        write_report(
            new_result,
            args.report,
            title=f"{policy.name} on {new_network.topology.name} (incremental)",
        )

    if args.json:
        document = {
            "old": _verify_document(old_result, policy),
            "new": _verify_document(new_result, policy),
            "delta": delta.summary(),
        }
        print(json.dumps(document, indent=2))
    else:
        print(f"old configuration: {old_result.summary()}")
        print()
        print(delta.describe())
        print()
        print(f"new configuration: {new_result.summary()}")
        if new_result.incremental is not None:
            print(new_result.incremental.describe())
        for violation in new_result.violations:
            print()
            print(violation.render())
        for failure in new_result.errors:
            print()
            print(failure.render())
    return _verify_exit_code(new_result)


def _parse_scenario(spec: str, network):
    """Parse one ``--scenario`` value into a lifecycle :class:`Scenario`.

    A spec is ``+``-separated event parts, each ``KIND:ARGS``: ``crash:NODE``,
    ``restart:NODE``, ``drain:NODE``, ``return:NODE``, ``maintenance:NODE``
    (drain, settle, return), ``flap:A,B``, ``gray:EXPORTER,IMPORTER``.  The
    scenario converges first, then stages the events in order.
    """
    from repro.scenarios import (
        Converge,
        FlapStorm,
        GrayFailure,
        MaintenanceDrain,
        NodeCrash,
        NodeRestart,
        ReturnToService,
        Scenario,
    )

    node_events = {
        "crash": NodeCrash,
        "restart": NodeRestart,
        "drain": MaintenanceDrain,
        "return": ReturnToService,
    }
    events = []
    for part in (piece.strip() for piece in spec.split("+")):
        kind, sep, rest = part.partition(":")
        kind = kind.strip()
        rest = rest.strip()
        if not sep or not rest:
            raise CliError(
                f"malformed --scenario part {part!r}; expected KIND:ARGS "
                "(e.g. crash:node or gray:a,b)"
            )
        if kind in node_events or kind == "maintenance":
            if rest not in network.topology:
                raise CliError(f"unknown device {rest!r} in --scenario")
            if kind == "maintenance":
                events.extend(
                    (MaintenanceDrain(rest), Converge(), ReturnToService(rest))
                )
            else:
                events.append(node_events[kind](rest))
        elif kind in ("flap", "gray"):
            endpoints = _split_list(rest)
            if len(endpoints) != 2:
                raise CliError(
                    f"--scenario {kind} expects two devices, e.g. {kind}:a,b"
                )
            for name in endpoints:
                if name not in network.topology:
                    raise CliError(f"unknown device {name!r} in --scenario")
            if kind == "flap":
                events.append(FlapStorm(sessions=((endpoints[0], endpoints[1]),)))
            else:
                events.append(GrayFailure(endpoints[0], endpoints[1]))
        else:
            raise CliError(
                f"unknown --scenario kind {kind!r}; choose from crash, restart, "
                "drain, return, maintenance, flap, gray"
            )
    return Scenario(events=(Converge(),) + tuple(events), name=spec)


def _cmd_transient(args: argparse.Namespace) -> int:
    from repro.incremental import IncrementalVerifier
    from repro.transient import (
        Converge,
        FailSession,
        TransientBlackHoleFreedom,
        TransientLoopFreedom,
        TransientOptions,
    )

    network = _load_network(args)
    sources = _split_list(args.sources)
    for name in sources:
        if name not in network.topology:
            raise CliError(f"unknown device {name!r} in --sources")
    if args.property == "blackhole":
        prop = TransientBlackHoleFreedom(sources=sources or None)
    else:
        prop = TransientLoopFreedom(ignore_converged=not args.include_converged)

    initial_events = []
    if args.fail_session:
        endpoints = _split_list(args.fail_session.replace(":", ","))
        if len(endpoints) != 2:
            raise CliError("--fail-session expects two devices, e.g. a,b")
        for name in endpoints:
            if name not in network.topology:
                raise CliError(f"unknown device {name!r} in --fail-session")
        initial_events = [Converge(), FailSession(endpoints[0], endpoints[1])]

    scenarios = None
    if args.scenario:
        scenarios = [_parse_scenario(spec, network) for spec in args.scenario]

    destination = _parse_destination_prefix(args.destination_prefix)
    stop_at_first = not args.all_violations
    options = PlanktonOptions(
        max_failures=args.max_failures,
        cores=args.cores,
        backend=args.backend,
        stop_at_first_violation=stop_at_first,
        task_timeout=args.task_timeout,
        task_retries=args.task_retries,
    )
    try:
        transient_options = TransientOptions(
            max_states=args.max_states,
            max_depth=args.max_depth,
            stop_at_first_violation=stop_at_first,
            por=args.por,
            frontier=args.frontier,
            minimize_witnesses=args.minimize_witness,
            rank_immunity=not args.no_rank_immunity,
            scenario_events=args.scenario_events,
            scenario_kinds=tuple(_split_list(args.scenario_kinds)),
        )
    except ValueError as exc:
        raise CliError(str(exc))

    service = IncrementalVerifier(
        network, options, cache_dir=getattr(args, "cache_dir", None) or None
    )
    bgp_pecs = [pec for pec in service.plankton.pecs if pec.has_bgp()]
    pecs = bgp_pecs
    if destination is not None:
        target = destination.to_range()
        pecs = [pec for pec in bgp_pecs if pec.address_range.overlaps(target)]
    if pecs:
        campaign = service.verify_transients(
            [prop],
            transient=transient_options,
            initial_events=initial_events,
            scenarios=scenarios,
            pecs=pecs,
        )
    else:
        # Nothing to analyse still honours --json/--report: emit an empty
        # (vacuously holding) campaign document instead of bare text.
        from repro.transient import TransientCampaignResult

        campaign = TransientCampaignResult()
        if not args.json:
            if bgp_pecs:
                print(
                    f"--destination-prefix {args.destination_prefix} matches no "
                    "BGP-originated PEC; nothing to analyse"
                )
            else:
                print("no BGP-originated prefixes to analyse")

    if args.report:
        from repro.reporting import write_transient_report

        write_transient_report(
            campaign,
            args.report,
            title=f"Transient analysis of {network.topology.name}",
        )

    if args.json:
        from repro.reporting import transient_campaign_to_dict

        print(json.dumps(transient_campaign_to_dict(campaign), indent=2))
    else:
        print(campaign.summary())
        if campaign.incremental is not None:
            print(campaign.incremental.describe())
        for violation in campaign.violations:
            print()
            print(violation.render())
        for failure in campaign.errors:
            print()
            print(failure.render())
    return _verify_exit_code(campaign)


def _cmd_pecs(args: argparse.Namespace) -> int:
    network = _load_network(args)
    pecs = compute_pecs(network)
    graph = build_dependency_graph(network, pecs)
    print(f"{len(pecs)} packet equivalence class(es)")
    for pec in pecs:
        print(pec.describe())
    print()
    print("dependency graph (PEC index -> depends on):")
    any_dependency = False
    for pec in pecs:
        dependencies = sorted(graph.dependencies_of(pec.index) - {pec.index})
        if dependencies:
            any_dependency = True
            print(f"  {pec.index} -> {', '.join(str(d) for d in dependencies)}")
    if not any_dependency:
        print("  (no cross-PEC dependencies)")
    sccs = [scc for scc in graph.strongly_connected_components() if len(scc) > 1]
    if sccs:
        print("strongly connected components larger than one PEC:")
        for scc in sccs:
            print(f"  {sorted(scc)}")
    return EXIT_HOLDS


def _cmd_simulate(args: argparse.Namespace) -> int:
    network = _load_network(args)
    simulator = SimulationVerifier(network, seed=args.seed)
    pecs = compute_pecs(network)
    printed = 0
    for pec in pecs:
        if pec.is_empty:
            continue
        result = simulator.check(LoopFreedom(destination_prefix=pec.most_specific_prefix))
        printed += 1
        print(pec.describe())
        explorer_result = _single_pec_data_plane(network, pec, args.seed)
        print(explorer_result)
        print()
    if printed == 0:
        print("no configured prefixes; nothing to simulate")
    return EXIT_HOLDS


def _single_pec_data_plane(network: NetworkConfig, pec, seed: int) -> str:
    """One simulated converged data plane of ``pec``, rendered as text."""
    from repro.core.network_model import DependencyContext, PecExplorer
    from repro.protocols.spvp import SpvpSimulator
    from repro.topology.failures import FailureScenario

    explorer = PecExplorer(
        network, pec, FailureScenario(), PlanktonOptions(), dependency_context=DependencyContext()
    )
    bgp_states: Dict = {}
    for prefix, devices in pec.bgp_origins:
        if not devices:
            continue
        instance = explorer.bgp_instance(prefix)
        bgp_states[prefix] = SpvpSimulator(instance, seed=seed).run()
    data_plane, _control = explorer.build_data_plane(bgp_states)
    return data_plane.describe()


def _cmd_trace(args: argparse.Namespace) -> int:
    network = _load_network(args)
    if args.source not in network.topology:
        raise CliError(f"unknown source device {args.source!r}")
    try:
        address = ip_to_int(args.destination)
    except Exception as exc:
        raise CliError(f"bad destination address {args.destination!r}: {exc}") from exc

    pecs = compute_pecs(network, include_default=True)
    target_pec = None
    for pec in pecs:
        if pec.address_range.contains_address(address):
            target_pec = pec
            break
    if target_pec is None or target_pec.is_empty:
        print(f"{args.destination}: no configured prefix covers this address; dropped everywhere")
        return EXIT_HOLDS

    print(f"destination {args.destination} falls into:")
    print(target_pec.describe())
    data_plane_text = _single_pec_data_plane(network, target_pec, args.seed)

    from repro.core.network_model import DependencyContext, PecExplorer
    from repro.protocols.spvp import SpvpSimulator
    from repro.topology.failures import FailureScenario

    explorer = PecExplorer(
        network,
        target_pec,
        FailureScenario(),
        PlanktonOptions(),
        dependency_context=DependencyContext(),
    )
    bgp_states: Dict = {}
    for prefix, devices in target_pec.bgp_origins:
        if not devices:
            continue
        instance = explorer.bgp_instance(prefix)
        bgp_states[prefix] = SpvpSimulator(instance, seed=args.seed).run()
    data_plane, _control = explorer.build_data_plane(bgp_states)

    print()
    print(f"forwarding branches from {args.source}:")
    for branch in trace_paths(data_plane, args.source, address):
        print(f"  {branch.describe()}")
    if args.show_fibs:
        print()
        print(data_plane_text)
    return EXIT_HOLDS


# --------------------------------------------------------------------------- argument parsing
def _add_input_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--topology", required=True, help="topology file (.topo text or .json)")
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--config", help="multi-device configuration file (DSL)")
    group.add_argument(
        "--config-dir", help="directory of per-device <device>.cfg configuration files"
    )


def _add_policy_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--policy",
        required=True,
        choices=[
            "reachability",
            "loop",
            "blackhole",
            "waypoint",
            "segmentation",
            "bounded-path-length",
            "multipath-consistency",
            "path-consistency",
        ],
    )
    parser.add_argument("--sources", help="comma-separated source devices")
    parser.add_argument("--waypoints", help="comma-separated waypoint devices")
    parser.add_argument("--protected", help="comma-separated protected devices (segmentation)")
    parser.add_argument("--destination-prefix", help="restrict the check to one destination prefix")
    parser.add_argument("--max-hops", type=int, help="hop budget for bounded-path-length")
    parser.add_argument(
        "--any-branch",
        action="store_true",
        help="reachability: accept delivery on any ECMP branch instead of all branches",
    )


def _add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--max-failures", type=int, default=0, help="link-failure budget")
    parser.add_argument("--cores", type=int, default=1, help="worker processes for PEC tasks")
    parser.add_argument(
        "--backend",
        choices=list(BACKEND_CHOICES),
        default="auto",
        help="execution engine backend (auto: process pool when --cores > 1)",
    )
    parser.add_argument(
        "--all-violations",
        action="store_true",
        help="keep searching after the first violation",
    )
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        help=(
            "per-task deadline in seconds; a task that overruns is retried "
            "and, on exhaustion, reported in the result's errors section"
        ),
    )
    parser.add_argument(
        "--task-retries",
        type=int,
        default=2,
        help="retries per failed/timed-out task before it is recorded as failed",
    )
    parser.add_argument(
        "--cache-dir",
        help="directory for the persistent incremental result cache (warm restarts)",
    )
    parser.add_argument("--json", action="store_true", help="machine-readable output")
    parser.add_argument(
        "--report",
        help="also write a report file (.json for structured output, anything else for Markdown)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests and documentation tooling)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Plankton-style network configuration verification",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help=(
            "surface the engine's event stream on stderr (-v: supervision "
            "events — retries, timeouts, pool rebuilds, cache cold starts; "
            "-vv: per-task debug)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    verify = subparsers.add_parser("verify", help="verify a policy over all converged data planes")
    _add_input_arguments(verify)
    _add_policy_arguments(verify)
    _add_engine_arguments(verify)
    verify.add_argument(
        "--no-optimizations",
        action="store_true",
        help="disable the §4 optimizations (naive model checking; for ablation only)",
    )
    verify.set_defaults(handler=_cmd_verify)

    diff_verify = subparsers.add_parser(
        "diff-verify",
        help="verify OLD, then incrementally re-verify NEW (only impacted PECs recomputed)",
    )
    diff_verify.add_argument("old_config", help="the old multi-device configuration file")
    diff_verify.add_argument("new_config", help="the new multi-device configuration file")
    diff_verify.add_argument(
        "--topology", required=True, help="topology file (.topo text or .json)"
    )
    _add_policy_arguments(diff_verify)
    _add_engine_arguments(diff_verify)
    diff_verify.add_argument(
        "--no-optimizations",
        action="store_true",
        help="disable the §4 optimizations (naive model checking; for ablation only)",
    )
    diff_verify.set_defaults(handler=_cmd_diff_verify)

    transient = subparsers.add_parser(
        "transient",
        help="explore SPVP interleavings and check transient properties",
    )
    _add_input_arguments(transient)
    transient.add_argument(
        "--property",
        choices=["loop", "blackhole"],
        default="loop",
        help="transient property to check (default: loop)",
    )
    transient.add_argument(
        "--sources", help="blackhole: restrict the check to these source devices"
    )
    transient.add_argument(
        "--destination-prefix", help="restrict the analysis to PECs covering this prefix"
    )
    transient.add_argument(
        "--include-converged",
        action="store_true",
        help="loop: also flag loops that persist in converged states",
    )
    transient.add_argument(
        "--max-states", type=int, default=20_000, help="state budget per exploration"
    )
    transient.add_argument(
        "--max-depth", type=int, default=64, help="delivery-depth budget per exploration"
    )
    transient.add_argument(
        "--por",
        choices=["ample", "sleep", "full"],
        default="ample",
        help="partial-order reduction mode (full = unreduced oracle)",
    )
    transient.add_argument(
        "--frontier",
        choices=["fifo", "priority"],
        default="fifo",
        help="exploration order (priority drains convergence chains first)",
    )
    transient.add_argument(
        "--minimize-witness",
        action="store_true",
        help="shrink violation witnesses by dropping independent deliveries",
    )
    transient.add_argument(
        "--no-rank-immunity",
        action="store_true",
        help=(
            "disable the rank-bound session-immunity refinement of the ample "
            "reduction (por=ample only; escape hatch for A/B comparisons)"
        ),
    )
    transient.add_argument(
        "--fail-session",
        help="converge, then flap the session between these two devices (A,B)",
    )
    transient.add_argument(
        "--scenario",
        action="append",
        help=(
            "lifecycle scenario to cross with every failure scenario; "
            "KIND:ARGS parts joined with + (crash:NODE, restart:NODE, "
            "drain:NODE, return:NODE, maintenance:NODE, flap:A,B, gray:A,B); "
            "repeatable, one campaign scenario per flag"
        ),
    )
    transient.add_argument(
        "--scenario-events",
        type=int,
        default=0,
        help=(
            "enumerate all symmetry-reduced lifecycle scenarios of up to K "
            "events and cross them with every failure scenario (default: 0)"
        ),
    )
    transient.add_argument(
        "--scenario-kinds",
        help=(
            "restrict --scenario-events to these event kinds "
            "(comma-separated: crash, restart, drain, maintenance, flap, gray)"
        ),
    )
    _add_engine_arguments(transient)
    transient.set_defaults(handler=_cmd_transient)

    pecs = subparsers.add_parser("pecs", help="show packet equivalence classes and dependencies")
    _add_input_arguments(pecs)
    pecs.set_defaults(handler=_cmd_pecs)

    simulate = subparsers.add_parser("simulate", help="single-execution simulation; dump FIBs")
    _add_input_arguments(simulate)
    simulate.add_argument("--seed", type=int, default=0, help="message-ordering seed")
    simulate.set_defaults(handler=_cmd_simulate)

    trace = subparsers.add_parser("trace", help="trace one packet through the simulated data plane")
    _add_input_arguments(trace)
    trace.add_argument("--source", required=True, help="source device")
    trace.add_argument("--destination", required=True, help="destination IPv4 address")
    trace.add_argument("--seed", type=int, default=0, help="message-ordering seed")
    trace.add_argument("--show-fibs", action="store_true", help="also dump the simulated FIBs")
    trace.set_defaults(handler=_cmd_trace)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    _configure_logging(args.verbose)
    try:
        return int(args.handler(args))
    except (CliError, ReproError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
