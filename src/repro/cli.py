"""Command-line interface to the Plankton reproduction.

The CLI mirrors how configuration verifiers are run in practice: the operator
points the tool at a topology file and the device configurations, names the
policy to check and the failure environment, and reads a verdict plus a
counterexample trail when the check fails.

Subcommands:

``verify``
    Run the Plankton verifier against one or more policies.  Exit code 0 when
    every policy holds, 1 when a violation is found, 2 on input errors or
    when the run degraded to a partial result (some tasks exhausted their
    retries; see the report's ``errors`` section).

``pecs``
    Print the Packet Equivalence Class partition and the PEC dependency graph
    (paper §3.1/§3.2) without running any verification.

``simulate``
    Run the Batfish-style single-execution simulation and dump the resulting
    FIBs — useful to inspect what "the" converged data plane looks like, with
    the usual caveat that other convergences may exist.

``trace``
    Follow the forwarding branches of one packet (source device + destination
    address) through the simulated data plane.

``transient``
    Explore SPVP message interleavings and check transient properties
    (micro-loops, momentary black holes) in every reachable state, with the
    partial-order reduction, frontier and witness-minimisation knobs of
    :mod:`repro.transient` exposed as flags.

``serve``
    Run the long-lived verification service: warm per-namespace incremental
    sessions behind a JSON-over-HTTP API (:mod:`repro.serve`).  ``verify``,
    ``diff-verify`` and ``transient`` accept ``--server URL`` to run against
    such a service instead of in-process — same output, same exit codes,
    plus exit code 3 when the server cannot be reached.

``diff-verify``
    Verify an old configuration, then *incrementally* re-verify a new one:
    the structural delta is computed, only the impacted Packet Equivalence
    Classes are recomputed, and clean results are merged from the cache
    (:mod:`repro.incremental`).  ``--cache-dir`` persists the cache so a
    later invocation restarts warm; the same flag on ``verify`` gives the
    warm-restart workflow for a single configuration.

Examples::

    python -m repro verify --topology campus.topo --config campus.cfg \\
        --policy reachability --sources acc0,acc1 --max-failures 1
    python -m repro verify --topology campus.topo --config campus.cfg \\
        --policy loop --cache-dir .plankton-cache
    python -m repro diff-verify old.cfg new.cfg --topology campus.topo \\
        --policy loop --cache-dir .plankton-cache
    python -m repro transient --topology dc.topo --config dc.cfg \\
        --fail-session agg0_0,edge0_0 --frontier priority
    python -m repro pecs --topology campus.topo --config campus.cfg
    python -m repro trace --topology campus.topo --config campus.cfg \\
        --source acc0 --destination 10.1.0.9
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from pathlib import Path as FilePath
from typing import Dict, List, Optional, Sequence

from repro.baselines.simulation import SimulationVerifier
from repro.config.objects import NetworkConfig
from repro.config.parser import parse_config, parse_device_config
from repro.core.options import PlanktonOptions
from repro.core.verifier import Plankton
from repro.dataplane.forwarding import trace_paths
from repro.engine import BACKEND_CHOICES
from repro.exceptions import ReproError, ServerProtocolError, ServiceUnavailable, SpecError
from repro.netaddr import Prefix, ip_to_int
from repro.pec.classes import compute_pecs
from repro.pec.dependencies import build_dependency_graph
from repro.policies import LoopFreedom, Policy
from repro.topology.io import load_topology

#: Exit codes (documented in ``docs/cli.md``).  A *partial* result — every
#: completed task holds but some tasks exhausted their retries — exits with
#: ``EXIT_ERROR``: "we could not prove it holds" must never look like
#: "it holds" to a CI gate.  A violation wins over partiality (a found
#: counterexample is definitive regardless of other tasks' fate).
EXIT_HOLDS = 0
EXIT_VIOLATION = 1
EXIT_ERROR = 2
#: ``--server`` mode only: the verification server could not be reached or
#: answered unintelligibly.  Distinct from ``EXIT_ERROR`` so CI gates can
#: tell "the check failed" from "the checking infrastructure failed".
EXIT_UNAVAILABLE = 3


class CliError(ReproError):
    """Raised for bad command-line input; reported without a traceback."""


def _configure_logging(verbosity: int) -> None:
    """Surface the engine's structured event stream (``repro.*`` loggers).

    ``-v`` shows supervision events at INFO/WARNING (retries, timeouts,
    pool rebuilds, cache cold starts); ``-vv`` adds DEBUG (per-task
    start/finish).  Without ``-v`` only warnings and errors reach stderr —
    so a degraded run is never silent, even unasked.
    """
    logger = logging.getLogger("repro")
    level = (
        logging.WARNING
        if verbosity <= 0
        else logging.INFO if verbosity == 1 else logging.DEBUG
    )
    logger.setLevel(level)
    if not any(isinstance(h, logging.StreamHandler) for h in logger.handlers):
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(logging.Formatter("%(levelname)s %(name)s: %(message)s"))
        logger.addHandler(handler)


# --------------------------------------------------------------------------- input loading
def _load_network(args: argparse.Namespace) -> NetworkConfig:
    """Build the :class:`NetworkConfig` named by ``--topology`` and ``--config``/``--config-dir``."""
    topology = load_topology(args.topology)
    if getattr(args, "config", None):
        text = FilePath(args.config).read_text()
        return parse_config(topology, text)
    if getattr(args, "config_dir", None):
        directory = FilePath(args.config_dir)
        if not directory.is_dir():
            raise CliError(f"--config-dir {directory} is not a directory")
        network = NetworkConfig(topology)
        config_files = sorted(directory.glob("*.cfg"))
        if not config_files:
            raise CliError(f"no *.cfg files in {directory}")
        for config_file in config_files:
            device_name = config_file.stem
            if device_name not in topology:
                raise CliError(
                    f"config file {config_file.name} does not match any topology device"
                )
            network.set_device(parse_device_config(device_name, config_file.read_text()))
        network.validate()
        return network
    raise CliError("one of --config or --config-dir is required")


def _split_list(value: Optional[str]) -> List[str]:
    """Split a comma-separated CLI value, dropping empty entries."""
    if not value:
        return []
    return [item.strip() for item in value.split(",") if item.strip()]


def _parse_destination_prefix(value: Optional[str]) -> Optional[Prefix]:
    if value is None:
        return None
    text = value if "/" in value else value + "/32"
    try:
        return Prefix(text)
    except Exception as exc:
        raise CliError(f"bad destination prefix {value!r}: {exc}") from exc


def _policy_spec(args: argparse.Namespace) -> Dict[str, object]:
    """The wire-format policy spec of the ``--policy`` flags.

    In local mode the spec is materialised immediately via
    :func:`repro.serve.specs.policy_from_spec`; in ``--server`` mode it is
    shipped verbatim, so both paths construct the policy identically.
    """
    spec: Dict[str, object] = {"policy": args.policy}
    if args.sources:
        spec["sources"] = _split_list(args.sources)
    if args.waypoints:
        spec["waypoints"] = _split_list(args.waypoints)
    protected = _split_list(getattr(args, "protected", None))
    if protected:
        spec["protected"] = protected
    if args.destination_prefix:
        spec["destination_prefix"] = args.destination_prefix
    if getattr(args, "max_hops", None) is not None:
        spec["max_hops"] = args.max_hops
    if getattr(args, "any_branch", False):
        spec["any_branch"] = True
    return spec


def _build_policy(args: argparse.Namespace, network: NetworkConfig) -> Policy:
    """Instantiate the policy selected by ``--policy`` and its options."""
    from repro.serve.specs import policy_from_spec

    try:
        return policy_from_spec(_policy_spec(args), network)
    except SpecError as exc:
        raise CliError(str(exc)) from exc


def _options_spec(args: argparse.Namespace) -> Dict[str, object]:
    """The wire-format options spec of the engine flags (shared local/remote)."""
    spec: Dict[str, object] = {
        "max_failures": args.max_failures,
        "cores": args.cores,
        "backend": args.backend,
        "stop_at_first_violation": not args.all_violations,
        "task_timeout": args.task_timeout,
        "task_retries": args.task_retries,
    }
    if getattr(args, "no_optimizations", False):
        spec["no_optimizations"] = True
    return spec


def _build_options(args: argparse.Namespace) -> PlanktonOptions:
    from repro.serve.specs import options_from_spec

    try:
        return options_from_spec(_options_spec(args))
    except SpecError as exc:
        raise CliError(str(exc)) from exc


# --------------------------------------------------------------------------- subcommands
def _verify_document(result, policy) -> Dict[str, object]:
    """The ``--json`` document of one verification result."""
    document: Dict[str, object] = {
        "holds": result.holds,
        "policy": policy.name,
        "pecs_analyzed": result.pecs_analyzed,
        "failure_scenarios": result.failure_scenarios,
        "converged_states": result.total_converged_states,
        "states_expanded": result.total_states_expanded,
        "elapsed_seconds": round(result.elapsed_seconds, 6),
        "violations": [
            {
                "policy": violation.policy,
                "pec": violation.pec_description,
                "failures": violation.failure_description,
                "message": violation.message,
            }
            for violation in result.violations
        ],
    }
    if result.incremental is not None:
        document["incremental"] = result.incremental.as_dict()
    if result.errors:
        document["complete"] = False
        document["errors"] = [failure.as_dict() for failure in result.errors]
    return document


def _print_verify_result(args: argparse.Namespace, result, policy) -> None:
    if args.json:
        print(json.dumps(_verify_document(result, policy), indent=2))
    else:
        print(result.summary())
        if result.incremental is not None:
            print(result.incremental.describe())
        for violation in result.violations:
            print()
            print(violation.render())
        for failure in result.errors:
            print()
            print(failure.render())


def _verify_exit_code(result) -> int:
    """Verdict → exit code: violation beats partial beats holds."""
    if not result.holds:
        return EXIT_VIOLATION
    if getattr(result, "errors", None):
        return EXIT_ERROR
    return EXIT_HOLDS


# --------------------------------------------------------------------------- server mode
_VERDICT_EXIT_CODES = {"holds": EXIT_HOLDS, "violated": EXIT_VIOLATION, "partial": EXIT_ERROR}


def _remote_client(args: argparse.Namespace):
    from repro.client import ServiceClient

    return ServiceClient(args.server)


def _remote_namespace(args: argparse.Namespace) -> str:
    return getattr(args, "namespace", None) or "default"


def _network_payload(args: argparse.Namespace) -> Dict[str, object]:
    """The full-config push payload of ``--topology`` + ``--config``/``--config-dir``.

    The topology file may be DSL text or JSON; it is normalised through the
    regular loader and re-serialised so the server always receives canonical
    topology text.
    """
    from repro.topology.io import format_topology

    topology_text = format_topology(load_topology(args.topology))
    if getattr(args, "config", None):
        return {"topology": topology_text, "config": FilePath(args.config).read_text()}
    if getattr(args, "config_dir", None):
        directory = FilePath(args.config_dir)
        if not directory.is_dir():
            raise CliError(f"--config-dir {directory} is not a directory")
        config_files = sorted(directory.glob("*.cfg"))
        if not config_files:
            raise CliError(f"no *.cfg files in {directory}")
        sections = [
            f"device {config_file.stem}\n{config_file.read_text()}"
            for config_file in config_files
        ]
        return {"topology": topology_text, "config": "\n".join(sections)}
    raise CliError("one of --config or --config-dir is required")


def _remote_result(args: argparse.Namespace, payload: Dict[str, object]) -> Dict[str, object]:
    """Push one job and wait for its result payload; failed jobs raise."""
    document = _remote_client(args).run(_remote_namespace(args), payload)
    if document.get("state") == "failed":
        raise CliError(f"server job {document.get('job')} failed: {document.get('error')}")
    result = document.get("result")
    if not isinstance(result, dict):
        raise ServerProtocolError(
            f"finished job {document.get('job')} carries no result payload"
        )
    return result


def _write_remote_report(path: str, result: Dict[str, object]) -> None:
    """Mirror :func:`repro.reporting.write_report`'s suffix dispatch using the
    server-rendered report documents."""
    file_path = FilePath(path)
    if file_path.suffix.lower() == ".json":
        file_path.write_text(json.dumps(result["report"], indent=2) + "\n")
    else:
        file_path.write_text(str(result["markdown"]))


def _print_remote_result(args: argparse.Namespace, result: Dict[str, object]) -> int:
    if args.report:
        _write_remote_report(args.report, result)
    if args.json:
        print(json.dumps(result["document"], indent=2))
    else:
        print(result["text"])
    return _VERDICT_EXIT_CODES.get(str(result.get("verdict")), EXIT_ERROR)


def _remote_verify(args: argparse.Namespace) -> int:
    payload = dict(_network_payload(args))
    payload.update(
        {"kind": "verify", "policies": [_policy_spec(args)], "options": _options_spec(args)}
    )
    return _print_remote_result(args, _remote_result(args, payload))


def _remote_diff_verify(args: argparse.Namespace) -> int:
    from repro.topology.io import format_topology

    topology_text = format_topology(load_topology(args.topology))
    common = {"kind": "verify", "policies": [_policy_spec(args)], "options": _options_spec(args)}
    old_payload = dict(common, topology=topology_text, config=FilePath(args.old_config).read_text())
    new_payload = dict(common, topology=topology_text, config=FilePath(args.new_config).read_text())

    old_result = _remote_result(args, old_payload)
    new_result = _remote_result(args, new_payload)
    delta_summary = new_result.get("delta", "no configuration changes")

    if args.report:
        _write_remote_report(args.report, new_result)
    if args.json:
        document = {
            "old": old_result["document"],
            "new": new_result["document"],
            "delta": delta_summary,
        }
        print(json.dumps(document, indent=2))
    else:
        old_lines = str(old_result["text"]).splitlines()
        print(f"old configuration: {old_lines[0] if old_lines else ''}")
        print()
        print(f"config delta: {delta_summary}")
        print()
        new_text = str(new_result["text"]).splitlines()
        if new_text:
            print(f"new configuration: {new_text[0]}")
            for line in new_text[1:]:
                print(line)
    return _VERDICT_EXIT_CODES.get(str(new_result.get("verdict")), EXIT_ERROR)


def _remote_transient(args: argparse.Namespace) -> int:
    payload = dict(_network_payload(args))
    payload.update(
        {
            "kind": "transient",
            "options": _options_spec(args),
            "transient": _transient_spec(args),
            "property": _transient_property_spec(args),
        }
    )
    if args.fail_session:
        payload["fail_session"] = args.fail_session
    if args.scenario:
        payload["scenarios"] = list(args.scenario)
    if args.destination_prefix:
        payload["destination_prefix"] = args.destination_prefix
    return _print_remote_result(args, _remote_result(args, payload))


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the verification service until SIGTERM/SIGINT/Ctrl-C."""
    import signal

    from repro.serve import ReproServer

    server = ReproServer(
        host=args.host,
        port=args.port,
        cache_dir=args.cache_dir,
        workers=args.workers,
        queue_depth=args.queue_depth,
    )
    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, lambda _signum, _frame: server.request_stop())
    # Announce the bound address (port 0 binds an ephemeral port) before
    # blocking, so wrappers can scrape the URL from the first stdout line.
    print(f"repro serve listening on {server.url}", flush=True)
    server.serve_forever()
    return EXIT_HOLDS


def _cmd_verify(args: argparse.Namespace) -> int:
    if getattr(args, "server", None):
        return _remote_verify(args)
    network = _load_network(args)
    policy = _build_policy(args, network)
    options = _build_options(args)
    if getattr(args, "cache_dir", None):
        from repro.incremental import IncrementalVerifier

        result = IncrementalVerifier(network, options, cache_dir=args.cache_dir).verify(
            policy
        )
    else:
        result = Plankton(network, options).verify(policy)

    if args.report:
        from repro.reporting import write_report

        write_report(result, args.report, title=f"{policy.name} on {network.topology.name}")

    _print_verify_result(args, result, policy)
    return _verify_exit_code(result)


def _cmd_diff_verify(args: argparse.Namespace) -> int:
    if getattr(args, "server", None):
        return _remote_diff_verify(args)
    from repro.incremental import IncrementalVerifier

    old_network = parse_config(load_topology(args.topology), FilePath(args.old_config).read_text())
    new_network = parse_config(load_topology(args.topology), FilePath(args.new_config).read_text())
    policy = _build_policy(args, new_network)
    options = _build_options(args)

    service = IncrementalVerifier(
        old_network, options, cache_dir=getattr(args, "cache_dir", None) or None
    )
    old_result = service.verify(policy)
    delta = service.update(new_network)
    new_result = service.verify(policy)

    if args.report:
        from repro.reporting import write_report

        write_report(
            new_result,
            args.report,
            title=f"{policy.name} on {new_network.topology.name} (incremental)",
        )

    if args.json:
        document = {
            "old": _verify_document(old_result, policy),
            "new": _verify_document(new_result, policy),
            "delta": delta.summary(),
        }
        print(json.dumps(document, indent=2))
    else:
        print(f"old configuration: {old_result.summary()}")
        print()
        print(delta.describe())
        print()
        print(f"new configuration: {new_result.summary()}")
        if new_result.incremental is not None:
            print(new_result.incremental.describe())
        for violation in new_result.violations:
            print()
            print(violation.render())
        for failure in new_result.errors:
            print()
            print(failure.render())
    return _verify_exit_code(new_result)


def _parse_scenario(spec: str, network):
    """Parse one ``--scenario`` value into a lifecycle :class:`Scenario`
    (delegates to the shared wire-format parser in :mod:`repro.serve.specs`)."""
    from repro.serve.specs import scenario_from_spec

    try:
        return scenario_from_spec(spec, network)
    except SpecError as exc:
        raise CliError(str(exc)) from exc


def _transient_spec(args: argparse.Namespace) -> Dict[str, object]:
    """The wire-format transient-options spec of the exploration flags."""
    spec: Dict[str, object] = {
        "max_states": args.max_states,
        "max_depth": args.max_depth,
        "stop_at_first_violation": not args.all_violations,
        "por": args.por,
        "frontier": args.frontier,
        "minimize_witnesses": args.minimize_witness,
        "rank_immunity": not args.no_rank_immunity,
        "scenario_events": args.scenario_events,
    }
    if args.scenario_kinds:
        spec["scenario_kinds"] = args.scenario_kinds
    return spec


def _transient_property_spec(args: argparse.Namespace) -> Dict[str, object]:
    """The wire-format transient-property spec of ``--property`` et al."""
    spec: Dict[str, object] = {"property": args.property}
    if args.sources:
        spec["sources"] = _split_list(args.sources)
    if args.include_converged:
        spec["include_converged"] = True
    return spec


def _cmd_transient(args: argparse.Namespace) -> int:
    if getattr(args, "server", None):
        return _remote_transient(args)

    from repro.incremental import IncrementalVerifier
    from repro.serve.specs import (
        fail_session_events,
        scenarios_from_specs,
        transient_options_from_spec,
        transient_property_from_spec,
    )

    network = _load_network(args)
    options = _build_options(args)
    try:
        prop = transient_property_from_spec(_transient_property_spec(args), network)
        initial_events = fail_session_events(args.fail_session, network)
        scenarios = scenarios_from_specs(args.scenario, network)
        transient_options = transient_options_from_spec(_transient_spec(args))
    except SpecError as exc:
        raise CliError(str(exc)) from exc

    destination = _parse_destination_prefix(args.destination_prefix)

    service = IncrementalVerifier(
        network, options, cache_dir=getattr(args, "cache_dir", None) or None
    )
    bgp_pecs = [pec for pec in service.plankton.pecs if pec.has_bgp()]
    pecs = bgp_pecs
    if destination is not None:
        target = destination.to_range()
        pecs = [pec for pec in bgp_pecs if pec.address_range.overlaps(target)]
    if pecs:
        campaign = service.verify_transients(
            [prop],
            transient=transient_options,
            initial_events=initial_events,
            scenarios=scenarios,
            pecs=pecs,
        )
    else:
        # Nothing to analyse still honours --json/--report: emit an empty
        # (vacuously holding) campaign document instead of bare text.
        from repro.transient import TransientCampaignResult

        campaign = TransientCampaignResult()
        if not args.json:
            if bgp_pecs:
                print(
                    f"--destination-prefix {args.destination_prefix} matches no "
                    "BGP-originated PEC; nothing to analyse"
                )
            else:
                print("no BGP-originated prefixes to analyse")

    if args.report:
        from repro.reporting import write_transient_report

        write_transient_report(
            campaign,
            args.report,
            title=f"Transient analysis of {network.topology.name}",
        )

    if args.json:
        from repro.reporting import transient_campaign_to_dict

        print(json.dumps(transient_campaign_to_dict(campaign), indent=2))
    else:
        print(campaign.summary())
        if campaign.incremental is not None:
            print(campaign.incremental.describe())
        for violation in campaign.violations:
            print()
            print(violation.render())
        for failure in campaign.errors:
            print()
            print(failure.render())
    return _verify_exit_code(campaign)


def _cmd_pecs(args: argparse.Namespace) -> int:
    network = _load_network(args)
    pecs = compute_pecs(network)
    graph = build_dependency_graph(network, pecs)
    print(f"{len(pecs)} packet equivalence class(es)")
    for pec in pecs:
        print(pec.describe())
    print()
    print("dependency graph (PEC index -> depends on):")
    any_dependency = False
    for pec in pecs:
        dependencies = sorted(graph.dependencies_of(pec.index) - {pec.index})
        if dependencies:
            any_dependency = True
            print(f"  {pec.index} -> {', '.join(str(d) for d in dependencies)}")
    if not any_dependency:
        print("  (no cross-PEC dependencies)")
    sccs = [scc for scc in graph.strongly_connected_components() if len(scc) > 1]
    if sccs:
        print("strongly connected components larger than one PEC:")
        for scc in sccs:
            print(f"  {sorted(scc)}")
    return EXIT_HOLDS


def _cmd_simulate(args: argparse.Namespace) -> int:
    network = _load_network(args)
    simulator = SimulationVerifier(network, seed=args.seed)
    pecs = compute_pecs(network)
    printed = 0
    for pec in pecs:
        if pec.is_empty:
            continue
        result = simulator.check(LoopFreedom(destination_prefix=pec.most_specific_prefix))
        printed += 1
        print(pec.describe())
        explorer_result = _single_pec_data_plane(network, pec, args.seed)
        print(explorer_result)
        print()
    if printed == 0:
        print("no configured prefixes; nothing to simulate")
    return EXIT_HOLDS


def _single_pec_data_plane(network: NetworkConfig, pec, seed: int) -> str:
    """One simulated converged data plane of ``pec``, rendered as text."""
    from repro.core.network_model import DependencyContext, PecExplorer
    from repro.protocols.spvp import SpvpSimulator
    from repro.topology.failures import FailureScenario

    explorer = PecExplorer(
        network, pec, FailureScenario(), PlanktonOptions(), dependency_context=DependencyContext()
    )
    bgp_states: Dict = {}
    for prefix, devices in pec.bgp_origins:
        if not devices:
            continue
        instance = explorer.bgp_instance(prefix)
        bgp_states[prefix] = SpvpSimulator(instance, seed=seed).run()
    data_plane, _control = explorer.build_data_plane(bgp_states)
    return data_plane.describe()


def _cmd_trace(args: argparse.Namespace) -> int:
    network = _load_network(args)
    if args.source not in network.topology:
        raise CliError(f"unknown source device {args.source!r}")
    try:
        address = ip_to_int(args.destination)
    except Exception as exc:
        raise CliError(f"bad destination address {args.destination!r}: {exc}") from exc

    pecs = compute_pecs(network, include_default=True)
    target_pec = None
    for pec in pecs:
        if pec.address_range.contains_address(address):
            target_pec = pec
            break
    if target_pec is None or target_pec.is_empty:
        print(f"{args.destination}: no configured prefix covers this address; dropped everywhere")
        return EXIT_HOLDS

    print(f"destination {args.destination} falls into:")
    print(target_pec.describe())
    data_plane_text = _single_pec_data_plane(network, target_pec, args.seed)

    from repro.core.network_model import DependencyContext, PecExplorer
    from repro.protocols.spvp import SpvpSimulator
    from repro.topology.failures import FailureScenario

    explorer = PecExplorer(
        network,
        target_pec,
        FailureScenario(),
        PlanktonOptions(),
        dependency_context=DependencyContext(),
    )
    bgp_states: Dict = {}
    for prefix, devices in target_pec.bgp_origins:
        if not devices:
            continue
        instance = explorer.bgp_instance(prefix)
        bgp_states[prefix] = SpvpSimulator(instance, seed=args.seed).run()
    data_plane, _control = explorer.build_data_plane(bgp_states)

    print()
    print(f"forwarding branches from {args.source}:")
    for branch in trace_paths(data_plane, args.source, address):
        print(f"  {branch.describe()}")
    if args.show_fibs:
        print()
        print(data_plane_text)
    return EXIT_HOLDS


# --------------------------------------------------------------------------- argument parsing
def _add_input_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--topology", required=True, help="topology file (.topo text or .json)")
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--config", help="multi-device configuration file (DSL)")
    group.add_argument(
        "--config-dir", help="directory of per-device <device>.cfg configuration files"
    )


def _add_policy_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--policy",
        required=True,
        choices=[
            "reachability",
            "loop",
            "blackhole",
            "waypoint",
            "segmentation",
            "bounded-path-length",
            "multipath-consistency",
            "path-consistency",
        ],
    )
    parser.add_argument("--sources", help="comma-separated source devices")
    parser.add_argument("--waypoints", help="comma-separated waypoint devices")
    parser.add_argument("--protected", help="comma-separated protected devices (segmentation)")
    parser.add_argument("--destination-prefix", help="restrict the check to one destination prefix")
    parser.add_argument("--max-hops", type=int, help="hop budget for bounded-path-length")
    parser.add_argument(
        "--any-branch",
        action="store_true",
        help="reachability: accept delivery on any ECMP branch instead of all branches",
    )


def _add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--max-failures", type=int, default=0, help="link-failure budget")
    parser.add_argument("--cores", type=int, default=1, help="worker processes for PEC tasks")
    parser.add_argument(
        "--backend",
        choices=list(BACKEND_CHOICES),
        default="auto",
        help="execution engine backend (auto: process pool when --cores > 1)",
    )
    parser.add_argument(
        "--all-violations",
        action="store_true",
        help="keep searching after the first violation",
    )
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        help=(
            "per-task deadline in seconds; a task that overruns is retried "
            "and, on exhaustion, reported in the result's errors section"
        ),
    )
    parser.add_argument(
        "--task-retries",
        type=int,
        default=2,
        help="retries per failed/timed-out task before it is recorded as failed",
    )
    parser.add_argument(
        "--cache-dir",
        help="directory for the persistent incremental result cache (warm restarts)",
    )
    parser.add_argument(
        "--server",
        help=(
            "run against a repro serve instance at this URL instead of "
            "in-process (e.g. http://127.0.0.1:8080); exit code 3 when the "
            "server is unreachable"
        ),
    )
    parser.add_argument(
        "--namespace",
        default=None,
        help="server namespace (warm session) to push into (default: 'default')",
    )
    parser.add_argument("--json", action="store_true", help="machine-readable output")
    parser.add_argument(
        "--report",
        help="also write a report file (.json for structured output, anything else for Markdown)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests and documentation tooling)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Plankton-style network configuration verification",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help=(
            "surface the engine's event stream on stderr (-v: supervision "
            "events — retries, timeouts, pool rebuilds, cache cold starts; "
            "-vv: per-task debug)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    verify = subparsers.add_parser("verify", help="verify a policy over all converged data planes")
    _add_input_arguments(verify)
    _add_policy_arguments(verify)
    _add_engine_arguments(verify)
    verify.add_argument(
        "--no-optimizations",
        action="store_true",
        help="disable the §4 optimizations (naive model checking; for ablation only)",
    )
    verify.set_defaults(handler=_cmd_verify)

    diff_verify = subparsers.add_parser(
        "diff-verify",
        help="verify OLD, then incrementally re-verify NEW (only impacted PECs recomputed)",
    )
    diff_verify.add_argument("old_config", help="the old multi-device configuration file")
    diff_verify.add_argument("new_config", help="the new multi-device configuration file")
    diff_verify.add_argument(
        "--topology", required=True, help="topology file (.topo text or .json)"
    )
    _add_policy_arguments(diff_verify)
    _add_engine_arguments(diff_verify)
    diff_verify.add_argument(
        "--no-optimizations",
        action="store_true",
        help="disable the §4 optimizations (naive model checking; for ablation only)",
    )
    diff_verify.set_defaults(handler=_cmd_diff_verify)

    transient = subparsers.add_parser(
        "transient",
        help="explore SPVP interleavings and check transient properties",
    )
    _add_input_arguments(transient)
    transient.add_argument(
        "--property",
        choices=["loop", "blackhole"],
        default="loop",
        help="transient property to check (default: loop)",
    )
    transient.add_argument(
        "--sources", help="blackhole: restrict the check to these source devices"
    )
    transient.add_argument(
        "--destination-prefix", help="restrict the analysis to PECs covering this prefix"
    )
    transient.add_argument(
        "--include-converged",
        action="store_true",
        help="loop: also flag loops that persist in converged states",
    )
    transient.add_argument(
        "--max-states", type=int, default=20_000, help="state budget per exploration"
    )
    transient.add_argument(
        "--max-depth", type=int, default=64, help="delivery-depth budget per exploration"
    )
    transient.add_argument(
        "--por",
        choices=["ample", "sleep", "full"],
        default="ample",
        help="partial-order reduction mode (full = unreduced oracle)",
    )
    transient.add_argument(
        "--frontier",
        choices=["fifo", "priority"],
        default="fifo",
        help="exploration order (priority drains convergence chains first)",
    )
    transient.add_argument(
        "--minimize-witness",
        action="store_true",
        help="shrink violation witnesses by dropping independent deliveries",
    )
    transient.add_argument(
        "--no-rank-immunity",
        action="store_true",
        help=(
            "disable the rank-bound session-immunity refinement of the ample "
            "reduction (por=ample only; escape hatch for A/B comparisons)"
        ),
    )
    transient.add_argument(
        "--fail-session",
        help="converge, then flap the session between these two devices (A,B)",
    )
    transient.add_argument(
        "--scenario",
        action="append",
        help=(
            "lifecycle scenario to cross with every failure scenario; "
            "KIND:ARGS parts joined with + (crash:NODE, restart:NODE, "
            "drain:NODE, return:NODE, maintenance:NODE, flap:A,B, gray:A,B); "
            "repeatable, one campaign scenario per flag"
        ),
    )
    transient.add_argument(
        "--scenario-events",
        type=int,
        default=0,
        help=(
            "enumerate all symmetry-reduced lifecycle scenarios of up to K "
            "events and cross them with every failure scenario (default: 0)"
        ),
    )
    transient.add_argument(
        "--scenario-kinds",
        help=(
            "restrict --scenario-events to these event kinds "
            "(comma-separated: crash, restart, drain, maintenance, flap, gray)"
        ),
    )
    _add_engine_arguments(transient)
    transient.set_defaults(handler=_cmd_transient)

    serve = subparsers.add_parser(
        "serve",
        help="run the long-lived verification service (warm incremental sessions over HTTP)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default: loopback)")
    serve.add_argument(
        "--port", type=int, default=8080, help="bind port (0 binds an ephemeral port)"
    )
    serve.add_argument(
        "--cache-dir",
        help="root directory for per-namespace persistent result caches",
    )
    serve.add_argument(
        "--workers", type=int, default=2, help="verification worker threads (default: 2)"
    )
    serve.add_argument(
        "--queue-depth",
        type=int,
        default=64,
        help="admission control: maximum queued jobs before pushes get HTTP 429",
    )
    serve.set_defaults(handler=_cmd_serve)

    pecs = subparsers.add_parser("pecs", help="show packet equivalence classes and dependencies")
    _add_input_arguments(pecs)
    pecs.set_defaults(handler=_cmd_pecs)

    simulate = subparsers.add_parser("simulate", help="single-execution simulation; dump FIBs")
    _add_input_arguments(simulate)
    simulate.add_argument("--seed", type=int, default=0, help="message-ordering seed")
    simulate.set_defaults(handler=_cmd_simulate)

    trace = subparsers.add_parser("trace", help="trace one packet through the simulated data plane")
    _add_input_arguments(trace)
    trace.add_argument("--source", required=True, help="source device")
    trace.add_argument("--destination", required=True, help="destination IPv4 address")
    trace.add_argument("--seed", type=int, default=0, help="message-ordering seed")
    trace.add_argument("--show-fibs", action="store_true", help="also dump the simulated FIBs")
    trace.set_defaults(handler=_cmd_trace)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    _configure_logging(args.verbose)
    try:
        return int(args.handler(args))
    except (ServiceUnavailable, ServerProtocolError) as exc:
        # Transport-layer failures get their own exit code so CI can tell
        # "the check failed" apart from "the checking service failed".
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_UNAVAILABLE
    except (CliError, ReproError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
