"""Command-line interface to the Plankton reproduction.

The CLI mirrors how configuration verifiers are run in practice: the operator
points the tool at a topology file and the device configurations, names the
policy to check and the failure environment, and reads a verdict plus a
counterexample trail when the check fails.

Subcommands:

``verify``
    Run the Plankton verifier against one or more policies.  Exit code 0 when
    every policy holds, 1 when a violation is found, 2 on input errors.

``pecs``
    Print the Packet Equivalence Class partition and the PEC dependency graph
    (paper §3.1/§3.2) without running any verification.

``simulate``
    Run the Batfish-style single-execution simulation and dump the resulting
    FIBs — useful to inspect what "the" converged data plane looks like, with
    the usual caveat that other convergences may exist.

``trace``
    Follow the forwarding branches of one packet (source device + destination
    address) through the simulated data plane.

Examples::

    python -m repro verify --topology campus.topo --config campus.cfg \\
        --policy reachability --sources acc0,acc1 --max-failures 1
    python -m repro pecs --topology campus.topo --config campus.cfg
    python -m repro trace --topology campus.topo --config campus.cfg \\
        --source acc0 --destination 10.1.0.9
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path as FilePath
from typing import Dict, List, Optional, Sequence

from repro.baselines.simulation import SimulationVerifier
from repro.config.objects import NetworkConfig
from repro.config.parser import parse_config, parse_device_config
from repro.core.options import OptimizationFlags, PlanktonOptions
from repro.core.verifier import Plankton
from repro.dataplane.forwarding import trace_paths
from repro.engine import BACKEND_CHOICES
from repro.exceptions import ReproError
from repro.netaddr import Prefix, ip_to_int
from repro.pec.classes import compute_pecs
from repro.pec.dependencies import build_dependency_graph
from repro.policies import (
    BlackHoleFreedom,
    BoundedPathLength,
    LoopFreedom,
    MultipathConsistency,
    PathConsistency,
    Policy,
    Reachability,
    Segmentation,
    Waypoint,
)
from repro.topology.io import load_topology

#: Exit codes (documented in ``docs/cli.md``).
EXIT_HOLDS = 0
EXIT_VIOLATION = 1
EXIT_ERROR = 2


class CliError(ReproError):
    """Raised for bad command-line input; reported without a traceback."""


# --------------------------------------------------------------------------- input loading
def _load_network(args: argparse.Namespace) -> NetworkConfig:
    """Build the :class:`NetworkConfig` named by ``--topology`` and ``--config``/``--config-dir``."""
    topology = load_topology(args.topology)
    if getattr(args, "config", None):
        text = FilePath(args.config).read_text()
        return parse_config(topology, text)
    if getattr(args, "config_dir", None):
        directory = FilePath(args.config_dir)
        if not directory.is_dir():
            raise CliError(f"--config-dir {directory} is not a directory")
        network = NetworkConfig(topology)
        config_files = sorted(directory.glob("*.cfg"))
        if not config_files:
            raise CliError(f"no *.cfg files in {directory}")
        for config_file in config_files:
            device_name = config_file.stem
            if device_name not in topology:
                raise CliError(
                    f"config file {config_file.name} does not match any topology device"
                )
            network.set_device(parse_device_config(device_name, config_file.read_text()))
        network.validate()
        return network
    raise CliError("one of --config or --config-dir is required")


def _split_list(value: Optional[str]) -> List[str]:
    """Split a comma-separated CLI value, dropping empty entries."""
    if not value:
        return []
    return [item.strip() for item in value.split(",") if item.strip()]


def _parse_destination_prefix(value: Optional[str]) -> Optional[Prefix]:
    if value is None:
        return None
    text = value if "/" in value else value + "/32"
    try:
        return Prefix(text)
    except Exception as exc:
        raise CliError(f"bad destination prefix {value!r}: {exc}") from exc


def _build_policy(args: argparse.Namespace, network: NetworkConfig) -> Policy:
    """Instantiate the policy selected by ``--policy`` and its options."""
    sources = _split_list(args.sources)
    waypoints = _split_list(args.waypoints)
    destination = _parse_destination_prefix(args.destination_prefix)
    for name in sources + waypoints:
        if name not in network.topology:
            raise CliError(f"unknown device {name!r} in --sources/--waypoints")

    protected = _split_list(getattr(args, "protected", None))
    for name in protected:
        if name not in network.topology:
            raise CliError(f"unknown device {name!r} in --protected")

    kind = args.policy
    if kind == "segmentation":
        if not sources or not protected:
            raise CliError("--policy segmentation requires --sources and --protected")
        return Segmentation(sources=sources, protected=protected, destination_prefix=destination)
    if kind == "reachability":
        return Reachability(
            sources=sources or None,
            destination_prefix=destination,
            require_all_branches=not args.any_branch,
        )
    if kind == "loop":
        return LoopFreedom(destination_prefix=destination)
    if kind == "blackhole":
        return BlackHoleFreedom(
            destination_prefix=destination,
            only_on_paths_from=sources or None,
        )
    if kind == "waypoint":
        if not sources or not waypoints:
            raise CliError("--policy waypoint requires --sources and --waypoints")
        return Waypoint(sources=sources, waypoints=waypoints, destination_prefix=destination)
    if kind == "bounded-path-length":
        if args.max_hops is None:
            raise CliError("--policy bounded-path-length requires --max-hops")
        return BoundedPathLength(
            max_hops=args.max_hops, sources=sources or None, destination_prefix=destination
        )
    if kind == "multipath-consistency":
        return MultipathConsistency(sources=sources or None, destination_prefix=destination)
    if kind == "path-consistency":
        if len(sources) < 2:
            raise CliError("--policy path-consistency requires at least two --sources devices")
        return PathConsistency(device_group=sources, destination_prefix=destination)
    raise CliError(f"unknown policy {kind!r}")


def _build_options(args: argparse.Namespace) -> PlanktonOptions:
    flags = OptimizationFlags.none_enabled() if args.no_optimizations else OptimizationFlags()
    return PlanktonOptions(
        max_failures=args.max_failures,
        cores=args.cores,
        backend=args.backend,
        stop_at_first_violation=not args.all_violations,
        optimizations=flags,
    )


# --------------------------------------------------------------------------- subcommands
def _cmd_verify(args: argparse.Namespace) -> int:
    network = _load_network(args)
    policy = _build_policy(args, network)
    options = _build_options(args)
    result = Plankton(network, options).verify(policy)

    if args.report:
        from repro.reporting import write_report

        write_report(result, args.report, title=f"{policy.name} on {network.topology.name}")

    if args.json:
        document = {
            "holds": result.holds,
            "policy": policy.name,
            "pecs_analyzed": result.pecs_analyzed,
            "failure_scenarios": result.failure_scenarios,
            "converged_states": result.total_converged_states,
            "states_expanded": result.total_states_expanded,
            "elapsed_seconds": round(result.elapsed_seconds, 6),
            "violations": [
                {
                    "policy": violation.policy,
                    "pec": violation.pec_description,
                    "failures": violation.failure_description,
                    "message": violation.message,
                }
                for violation in result.violations
            ],
        }
        print(json.dumps(document, indent=2))
    else:
        print(result.summary())
        for violation in result.violations:
            print()
            print(violation.render())
    return EXIT_HOLDS if result.holds else EXIT_VIOLATION


def _cmd_pecs(args: argparse.Namespace) -> int:
    network = _load_network(args)
    pecs = compute_pecs(network)
    graph = build_dependency_graph(network, pecs)
    print(f"{len(pecs)} packet equivalence class(es)")
    for pec in pecs:
        print(pec.describe())
    print()
    print("dependency graph (PEC index -> depends on):")
    any_dependency = False
    for pec in pecs:
        dependencies = sorted(graph.dependencies_of(pec.index) - {pec.index})
        if dependencies:
            any_dependency = True
            print(f"  {pec.index} -> {', '.join(str(d) for d in dependencies)}")
    if not any_dependency:
        print("  (no cross-PEC dependencies)")
    sccs = [scc for scc in graph.strongly_connected_components() if len(scc) > 1]
    if sccs:
        print("strongly connected components larger than one PEC:")
        for scc in sccs:
            print(f"  {sorted(scc)}")
    return EXIT_HOLDS


def _cmd_simulate(args: argparse.Namespace) -> int:
    network = _load_network(args)
    simulator = SimulationVerifier(network, seed=args.seed)
    pecs = compute_pecs(network)
    printed = 0
    for pec in pecs:
        if pec.is_empty:
            continue
        result = simulator.check(LoopFreedom(destination_prefix=pec.most_specific_prefix))
        printed += 1
        print(pec.describe())
        explorer_result = _single_pec_data_plane(network, pec, args.seed)
        print(explorer_result)
        print()
    if printed == 0:
        print("no configured prefixes; nothing to simulate")
    return EXIT_HOLDS


def _single_pec_data_plane(network: NetworkConfig, pec, seed: int) -> str:
    """One simulated converged data plane of ``pec``, rendered as text."""
    from repro.core.network_model import DependencyContext, PecExplorer
    from repro.protocols.spvp import SpvpSimulator
    from repro.topology.failures import FailureScenario

    explorer = PecExplorer(
        network, pec, FailureScenario(), PlanktonOptions(), dependency_context=DependencyContext()
    )
    bgp_states: Dict = {}
    for prefix, devices in pec.bgp_origins:
        if not devices:
            continue
        instance = explorer.bgp_instance(prefix)
        bgp_states[prefix] = SpvpSimulator(instance, seed=seed).run()
    data_plane, _control = explorer.build_data_plane(bgp_states)
    return data_plane.describe()


def _cmd_trace(args: argparse.Namespace) -> int:
    network = _load_network(args)
    if args.source not in network.topology:
        raise CliError(f"unknown source device {args.source!r}")
    try:
        address = ip_to_int(args.destination)
    except Exception as exc:
        raise CliError(f"bad destination address {args.destination!r}: {exc}") from exc

    pecs = compute_pecs(network, include_default=True)
    target_pec = None
    for pec in pecs:
        if pec.address_range.contains_address(address):
            target_pec = pec
            break
    if target_pec is None or target_pec.is_empty:
        print(f"{args.destination}: no configured prefix covers this address; dropped everywhere")
        return EXIT_HOLDS

    print(f"destination {args.destination} falls into:")
    print(target_pec.describe())
    data_plane_text = _single_pec_data_plane(network, target_pec, args.seed)

    from repro.core.network_model import DependencyContext, PecExplorer
    from repro.protocols.spvp import SpvpSimulator
    from repro.topology.failures import FailureScenario

    explorer = PecExplorer(
        network,
        target_pec,
        FailureScenario(),
        PlanktonOptions(),
        dependency_context=DependencyContext(),
    )
    bgp_states: Dict = {}
    for prefix, devices in target_pec.bgp_origins:
        if not devices:
            continue
        instance = explorer.bgp_instance(prefix)
        bgp_states[prefix] = SpvpSimulator(instance, seed=args.seed).run()
    data_plane, _control = explorer.build_data_plane(bgp_states)

    print()
    print(f"forwarding branches from {args.source}:")
    for branch in trace_paths(data_plane, args.source, address):
        print(f"  {branch.describe()}")
    if args.show_fibs:
        print()
        print(data_plane_text)
    return EXIT_HOLDS


# --------------------------------------------------------------------------- argument parsing
def _add_input_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--topology", required=True, help="topology file (.topo text or .json)")
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--config", help="multi-device configuration file (DSL)")
    group.add_argument(
        "--config-dir", help="directory of per-device <device>.cfg configuration files"
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests and documentation tooling)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Plankton-style network configuration verification",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    verify = subparsers.add_parser("verify", help="verify a policy over all converged data planes")
    _add_input_arguments(verify)
    verify.add_argument(
        "--policy",
        required=True,
        choices=[
            "reachability",
            "loop",
            "blackhole",
            "waypoint",
            "segmentation",
            "bounded-path-length",
            "multipath-consistency",
            "path-consistency",
        ],
    )
    verify.add_argument("--sources", help="comma-separated source devices")
    verify.add_argument("--waypoints", help="comma-separated waypoint devices")
    verify.add_argument("--protected", help="comma-separated protected devices (segmentation)")
    verify.add_argument("--destination-prefix", help="restrict the check to one destination prefix")
    verify.add_argument("--max-hops", type=int, help="hop budget for bounded-path-length")
    verify.add_argument(
        "--any-branch",
        action="store_true",
        help="reachability: accept delivery on any ECMP branch instead of all branches",
    )
    verify.add_argument("--max-failures", type=int, default=0, help="link-failure budget")
    verify.add_argument("--cores", type=int, default=1, help="worker processes for PEC tasks")
    verify.add_argument(
        "--backend",
        choices=list(BACKEND_CHOICES),
        default="auto",
        help="execution engine backend (auto: process pool when --cores > 1)",
    )
    verify.add_argument(
        "--all-violations",
        action="store_true",
        help="keep searching after the first violation",
    )
    verify.add_argument(
        "--no-optimizations",
        action="store_true",
        help="disable the §4 optimizations (naive model checking; for ablation only)",
    )
    verify.add_argument("--json", action="store_true", help="machine-readable output")
    verify.add_argument(
        "--report",
        help="also write a report file (.json for structured output, anything else for Markdown)",
    )
    verify.set_defaults(handler=_cmd_verify)

    pecs = subparsers.add_parser("pecs", help="show packet equivalence classes and dependencies")
    _add_input_arguments(pecs)
    pecs.set_defaults(handler=_cmd_pecs)

    simulate = subparsers.add_parser("simulate", help="single-execution simulation; dump FIBs")
    _add_input_arguments(simulate)
    simulate.add_argument("--seed", type=int, default=0, help="message-ordering seed")
    simulate.set_defaults(handler=_cmd_simulate)

    trace = subparsers.add_parser("trace", help="trace one packet through the simulated data plane")
    _add_input_arguments(trace)
    trace.add_argument("--source", required=True, help="source device")
    trace.add_argument("--destination", required=True, help="destination IPv4 address")
    trace.add_argument("--seed", type=int, default=0, help="message-ordering seed")
    trace.add_argument("--show-fibs", action="store_true", help="also dump the simulated FIBs")
    trace.set_defaults(handler=_cmd_trace)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return int(args.handler(args))
    except (CliError, ReproError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
