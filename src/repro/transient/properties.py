"""Transient properties checked over pre-convergence control plane states.

The paper scopes Plankton to converged states and explicitly lists checking
transient behaviour ("no transient loops prior to convergence") as out of
scope / future work (§3.5, §8).  This module implements that extension for the
SPVP message-passing model: a *transient property* is a predicate over the
instantaneous forwarding relation implied by the nodes' current best paths,
evaluated at every state the exploration reaches, converged or not.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.protocols.base import Route


@dataclass(frozen=True)
class TransientForwarding:
    """The forwarding relation implied by one control plane state.

    ``next_hop[n]`` is the device ``n`` currently forwards to, ``None`` when
    ``n`` has no route.  Origins forward to themselves conceptually; they are
    listed in ``delivering`` instead.
    """

    next_hop: Dict[str, Optional[str]]
    delivering: frozenset

    @staticmethod
    def from_best_paths(best: Dict[str, Optional[Route]]) -> "TransientForwarding":
        """Build the relation from a best-path assignment (SPVP/RPVP state)."""
        next_hop: Dict[str, Optional[str]] = {}
        delivering = set()
        for node, route in best.items():
            if route is None:
                next_hop[node] = None
            elif len(route.path) == 0:
                next_hop[node] = None
                delivering.add(node)
            else:
                next_hop[node] = route.path.head
        return TransientForwarding(next_hop=next_hop, delivering=frozenset(delivering))

    def find_cycle(self) -> Optional[List[str]]:
        """A forwarding cycle, if the instantaneous next hops contain one."""
        for start in self.next_hop:
            seen: Dict[str, int] = {}
            node: Optional[str] = start
            position = 0
            while node is not None and node not in seen:
                seen[node] = position
                position += 1
                node = self.next_hop.get(node)
            if node is not None and node in seen:
                ordered = sorted(seen, key=seen.get)  # type: ignore[arg-type]
                return ordered[seen[node]:] + [node]
        return None

    def dead_ends(self) -> List[str]:
        """Nodes whose next hop currently has no route (transient black holes)."""
        result = []
        for node, successor in self.next_hop.items():
            if successor is None:
                continue
            if self.next_hop.get(successor) is None and successor not in self.delivering:
                result.append(node)
        return sorted(result)


class TransientProperty(abc.ABC):
    """Base class for transient properties."""

    #: Human-readable name used in reports.
    name: str = "transient-property"

    @abc.abstractmethod
    def check(self, forwarding: TransientForwarding, converged: bool) -> Optional[str]:
        """Return a violation description for this state, or None."""


class TransientLoopFreedom(TransientProperty):
    """No forwarding loop exists in any reachable (transient) state."""

    name = "transient-loop-freedom"

    def __init__(self, ignore_converged: bool = False) -> None:
        #: When True, loops in converged states are not reported here (they
        #: are Plankton's normal Loop policy); only pre-convergence loops are.
        self.ignore_converged = ignore_converged

    def check(self, forwarding: TransientForwarding, converged: bool) -> Optional[str]:
        if converged and self.ignore_converged:
            return None
        cycle = forwarding.find_cycle()
        if cycle is None:
            return None
        kind = "converged" if converged else "transient"
        return f"{kind} forwarding loop: " + " -> ".join(cycle)


class TransientBlackHoleFreedom(TransientProperty):
    """No node ever forwards to a neighbour that currently has no route."""

    name = "transient-blackhole-freedom"

    def __init__(self, sources: Optional[Sequence[str]] = None) -> None:
        self.sources = set(sources) if sources else None

    def check(self, forwarding: TransientForwarding, converged: bool) -> Optional[str]:
        dead = forwarding.dead_ends()
        if self.sources is not None:
            dead = [node for node in dead if node in self.sources]
        if not dead:
            return None
        return "next hop of " + ", ".join(dead) + " has no route"


class AlwaysReaches(TransientProperty):
    """The given sources always have a path leading to a delivering node.

    This is a strong continuity property (no interruption of service during
    convergence); most networks violate it transiently, which is exactly the
    kind of insight the extension exposes.
    """

    name = "always-reaches"

    def __init__(self, sources: Sequence[str]) -> None:
        if not sources:
            raise ValueError("always-reaches needs at least one source")
        self.sources = list(sources)

    def check(self, forwarding: TransientForwarding, converged: bool) -> Optional[str]:
        for source in self.sources:
            node: Optional[str] = source
            hops = 0
            limit = len(forwarding.next_hop) + 1
            while node is not None and node not in forwarding.delivering and hops <= limit:
                node = forwarding.next_hop.get(node)
                hops += 1
            if node is None or node not in forwarding.delivering:
                return f"{source} cannot reach an origin in this state"
        return None
