"""Bounded exploration of transient (pre-convergence) control plane states.

Plankton model checks RPVP, which by construction (Theorem 1) preserves only
the *converged* states of the protocol.  This extension explores the richer
SPVP message-passing model instead: every interleaving of advertisement
deliveries is a distinct execution, and the states visited along the way are
the transient states in which forwarding anomalies such as micro-loops can
appear even when every converged state is correct.

The exploration is a breadth-first search over SPVP states (best paths,
rib-ins and message buffers), bounded by a state budget and a depth budget so
divergent configurations (BAD GADGET) terminate with a truncation flag rather
than running forever.

The per-state step is incremental, mirroring the RPVP explorer's treatment:
successors are derived :class:`repro.protocols.spvp.SpvpState` children
(structural sharing, no ``copy.deepcopy`` of the simulator), the visited-set
key is an O(changed-slots) Zobrist XOR off the parent's fingerprint instead
of a full (best, rib-in, buffers) tuple hash, pending channels are
delta-maintained on the state, and witness event sequences are reconstructed
from the BFS parent chain only when a violation is actually reported.
:class:`NaiveTransientAnalyzer` keeps the pre-refactor deepcopy/full-signature
exploration as the equivalence oracle and throughput baseline.

State-budget accounting is deduplicated: a state counts against
``max_states`` exactly once — when it is first admitted to the visited set —
no matter how many branches rediscover it, and ``truncated`` is set only when
a genuinely new state had to be dropped.
"""

from __future__ import annotations

import copy
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Set, Tuple

from repro.config.objects import NetworkConfig
from repro.modelcheck.hashing import StateInterner, ZobristFingerprinter
from repro.pec.classes import PacketEquivalenceClass
from repro.protocols.base import PathVectorInstance, Route
from repro.protocols.rpvp import RpvpState
from repro.protocols.spvp import ReferenceSpvpSimulator, SpvpState, SpvpStepper
from repro.topology.failures import FailureScenario
from repro.transient.properties import TransientForwarding, TransientProperty


@dataclass(frozen=True)
class TransientViolation:
    """One transient property violation with the event sequence reaching it."""

    property_name: str
    message: str
    depth: int
    converged: bool
    witness: Tuple[str, ...]

    def render(self) -> str:
        lines = [
            f"property  : {self.property_name}",
            f"violation : {self.message}",
            f"state     : {'converged' if self.converged else f'transient (depth {self.depth})'}",
            "event sequence:",
        ]
        if self.witness:
            lines.extend(f"  {index + 1}. {event}" for index, event in enumerate(self.witness))
        else:
            lines.append("  (initial state)")
        return "\n".join(lines)


@dataclass
class TransientAnalysisResult:
    """Aggregate result of one transient exploration."""

    states_explored: int = 0
    converged_states: int = 0
    max_depth_reached: int = 0
    truncated: bool = False
    elapsed_seconds: float = 0.0
    violations: List[TransientViolation] = field(default_factory=list)
    #: Converged best-path assignments, populated when the analyzer was built
    #: with ``collect_converged=True`` (the Theorem 1 cross-model check).
    converged_rpvp_states: List[RpvpState] = field(default_factory=list)

    @property
    def holds(self) -> bool:
        """True when no transient property was violated in the explored states."""
        return not self.violations

    def summary(self) -> str:
        verdict = "HOLDS" if self.holds else f"VIOLATED ({len(self.violations)} violation(s))"
        suffix = " [truncated: state budget reached]" if self.truncated else ""
        return (
            f"transient analysis: {verdict}; {self.states_explored} state(s), "
            f"{self.converged_states} converged, max depth {self.max_depth_reached}, "
            f"{self.elapsed_seconds:.3f}s{suffix}"
        )

    def stats_signature(self) -> Tuple:
        """Everything observable about the exploration except wall-clock time.

        Used by the equivalence tests to assert the incremental and the naive
        explorations are bit-identical.
        """
        return (
            self.states_explored,
            self.converged_states,
            self.max_depth_reached,
            self.truncated,
            tuple(
                (v.property_name, v.message, v.depth, v.converged, v.witness)
                for v in self.violations
            ),
        )


class TransientAnalyzer:
    """Breadth-first exploration of SPVP states checking transient properties."""

    def __init__(
        self,
        instance: PathVectorInstance,
        max_states: int = 20_000,
        max_depth: int = 64,
        stop_at_first_violation: bool = True,
        collect_converged: bool = False,
    ) -> None:
        self.instance = instance
        self.max_states = max_states
        self.max_depth = max_depth
        self.stop_at_first_violation = stop_at_first_violation
        self.collect_converged = collect_converged

    # ------------------------------------------------------------------ exploration
    def analyze(
        self, properties: Sequence[TransientProperty]
    ) -> TransientAnalysisResult:
        """Explore reachable SPVP states and check ``properties`` on each."""
        if not properties:
            raise ValueError("at least one transient property is required")
        started = time.perf_counter()
        result = TransientAnalysisResult()

        stepper = SpvpStepper(self.instance)
        hasher = ZobristFingerprinter(StateInterner())
        root = stepper.initial_state()
        visited: Set[int] = {root.fingerprint(hasher)}
        frontier: Deque[Tuple[SpvpState, int]] = deque([(root, 0)])

        while frontier:
            state, depth = frontier.popleft()
            result.states_explored += 1
            result.max_depth_reached = max(result.max_depth_reached, depth)
            converged = state.is_converged()
            if converged:
                result.converged_states += 1
                if self.collect_converged:
                    result.converged_rpvp_states.append(state.converged_rpvp())

            stop = self._check_state(state, converged, depth, properties, result)
            if stop:
                break

            if converged or depth >= self.max_depth:
                continue

            for channel in state.pending_channels():
                _event, successor = stepper.deliver(state, channel)
                fingerprint = successor.fingerprint(hasher)
                if fingerprint in visited:
                    continue
                if len(visited) >= self.max_states:
                    result.truncated = True
                    break
                visited.add(fingerprint)
                frontier.append((successor, depth + 1))

        result.elapsed_seconds = time.perf_counter() - started
        return result

    # ------------------------------------------------------------------ helpers
    def _check_state(
        self,
        state: SpvpState,
        converged: bool,
        depth: int,
        properties: Sequence[TransientProperty],
        result: TransientAnalysisResult,
    ) -> bool:
        """Check every property on one state; returns True when the search should stop."""
        forwarding = TransientForwarding.from_best_paths(state.best_map())
        for prop in properties:
            message = prop.check(forwarding, converged)
            if message is None:
                continue
            result.violations.append(
                TransientViolation(
                    property_name=prop.name,
                    message=message,
                    depth=depth,
                    converged=converged,
                    witness=tuple(
                        event.describe() for event in state.witness_events()
                    ),
                )
            )
            if self.stop_at_first_violation:
                return True
        return False


class NaiveTransientAnalyzer(TransientAnalyzer):
    """The pre-refactor exploration: deepcopy a simulator per successor.

    Kept as the oracle the equivalence tests and the throughput benchmark
    compare :class:`TransientAnalyzer` against: it explores over the mutable
    :class:`ReferenceSpvpSimulator`, cloning the whole simulator (best,
    rib-ins, buffers *and* event history) with ``copy.deepcopy`` for every
    successor and keying the visited set on a full (best, rib-in, buffers)
    signature tuple.  Budget accounting matches the incremental analyzer so
    the two produce bit-identical :class:`TransientAnalysisResult`s.
    """

    def analyze(
        self, properties: Sequence[TransientProperty]
    ) -> TransientAnalysisResult:
        if not properties:
            raise ValueError("at least one transient property is required")
        started = time.perf_counter()
        result = TransientAnalysisResult()

        root = ReferenceSpvpSimulator(self.instance, seed=0)
        visited: Set[Tuple] = {self._signature(root)}
        frontier: Deque[Tuple[ReferenceSpvpSimulator, int]] = deque([(root, 0)])

        while frontier:
            simulator, depth = frontier.popleft()
            result.states_explored += 1
            result.max_depth_reached = max(result.max_depth_reached, depth)
            converged = simulator.is_converged()
            if converged:
                result.converged_states += 1
                if self.collect_converged:
                    result.converged_rpvp_states.append(simulator.converged_state())

            stop = self._check_simulator(simulator, converged, depth, properties, result)
            if stop:
                break

            if converged or depth >= self.max_depth:
                continue

            for channel in simulator.pending_messages():
                successor = copy.deepcopy(simulator)
                successor.step(channel)
                signature = self._signature(successor)
                if signature in visited:
                    continue
                if len(visited) >= self.max_states:
                    result.truncated = True
                    break
                visited.add(signature)
                frontier.append((successor, depth + 1))

        result.elapsed_seconds = time.perf_counter() - started
        return result

    def _check_simulator(
        self,
        simulator: ReferenceSpvpSimulator,
        converged: bool,
        depth: int,
        properties: Sequence[TransientProperty],
        result: TransientAnalysisResult,
    ) -> bool:
        forwarding = TransientForwarding.from_best_paths(simulator.best)
        for prop in properties:
            message = prop.check(forwarding, converged)
            if message is None:
                continue
            result.violations.append(
                TransientViolation(
                    property_name=prop.name,
                    message=message,
                    depth=depth,
                    converged=converged,
                    witness=tuple(event.describe() for event in simulator.history),
                )
            )
            if self.stop_at_first_violation:
                return True
        return False

    @staticmethod
    def _signature(simulator: ReferenceSpvpSimulator) -> Tuple:
        """A hashable signature of the SPVP state (best, rib-in, buffers)."""
        best = tuple(sorted(
            (node, route.path if route is not None else None)
            for node, route in simulator.best.items()
        ))
        rib_in = tuple(sorted(
            (key, route.path if route is not None else None)
            for key, route in simulator.rib_in.items()
        ))
        buffers = tuple(sorted(
            (
                key,
                tuple(route.path if route is not None else None for route in queue),
            )
            for key, queue in simulator.buffers.items()
        ))
        return (best, rib_in, buffers)


def analyze_pec_transients(
    network: NetworkConfig,
    pec: PacketEquivalenceClass,
    properties: Sequence[TransientProperty],
    failure: Optional[FailureScenario] = None,
    max_states: int = 20_000,
    max_depth: int = 64,
) -> Dict[str, TransientAnalysisResult]:
    """Run transient analysis for every BGP prefix of ``pec``.

    Returns one result per analysed prefix (keyed by its text form).  PECs
    with no BGP origin have nothing to analyse: OSPF is modelled as a
    deterministic computation, so its transients are not represented in this
    reproduction (the same simplification the paper makes for converged-state
    checking applies here).
    """
    from repro.core.network_model import DependencyContext, PecExplorer
    from repro.core.options import PlanktonOptions

    failure = failure or FailureScenario()
    explorer = PecExplorer(
        network, pec, failure, PlanktonOptions(), dependency_context=DependencyContext()
    )
    results: Dict[str, TransientAnalysisResult] = {}
    for prefix, devices in pec.bgp_origins:
        if not devices:
            continue
        instance = explorer.bgp_instance(prefix)
        analyzer = TransientAnalyzer(instance, max_states=max_states, max_depth=max_depth)
        results[str(prefix)] = analyzer.analyze(properties)
    return results
