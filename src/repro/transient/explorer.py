"""Bounded exploration of transient (pre-convergence) control plane states.

Plankton model checks RPVP, which by construction (Theorem 1) preserves only
the *converged* states of the protocol.  This extension explores the richer
SPVP message-passing model instead: every interleaving of advertisement
deliveries is a distinct execution, and the states visited along the way are
the transient states in which forwarding anomalies such as micro-loops can
appear even when every converged state is correct.

The exploration is a breadth-first search over SPVP states (best paths,
rib-ins and message buffers), bounded by a state budget and a depth budget so
divergent configurations (BAD GADGET) terminate with a truncation flag rather
than running forever.

Most interleavings are equivalent — they differ only in the order of
commuting deliveries — so the search applies partial-order reduction
(:mod:`repro.modelcheck.por`): per-state *ample sets* expand a provably
sufficient subset of the pending channels, and *sleep sets* threaded through
the BFS frontier kill the commuting permutations the ample sets miss.  The
reduction is controlled by :attr:`TransientOptions.por` (``"ample"`` —
ample + sleep, the default; ``"sleep"`` — sleep sets only; ``"full"`` — no
reduction, the oracle the property tests compare against).  On a *complete*
search (no state-budget truncation, no depth-bound pruning) reduced runs
preserve the violation verdict of every transient property and the exact
set of converged (deadlocked) states; what they skip is redundant
interleavings, tallied in :class:`~repro.modelcheck.por.ReductionStatistics`.
Bounded searches are approximate in every mode, and the reduction may reach
a given state through a different — possibly deeper — interleaving prefix,
so two *truncated* runs are not state-for-state comparable (a violation
sitting exactly at the depth bound can fall just past it under reduction);
``ReductionStatistics.depth_pruned`` reports whether the bound bit.

The per-state step is incremental, mirroring the RPVP explorer's treatment:
successors are derived :class:`repro.protocols.spvp.SpvpState` children
(structural sharing, no ``copy.deepcopy`` of the simulator), the visited-set
key is an O(changed-slots) Zobrist XOR off the parent's fingerprint instead
of a full (best, rib-in, buffers) tuple hash, pending channels are
delta-maintained on the state, and witness event sequences are reconstructed
from the BFS parent chain only when a violation is actually reported.
:class:`NaiveTransientAnalyzer` keeps the pre-refactor deepcopy/full-signature
exploration as the equivalence oracle and throughput baseline.

State-budget accounting is deduplicated: a state counts against
``max_states`` exactly once — when it is first admitted to the visited set —
no matter how many branches rediscover it, and ``truncated`` is set only when
a genuinely new state had to be dropped.

Explorations can start from a *perturbed* root instead of the cold-start
initial state: ``analyze(properties, initial_events=...)`` applies a
sequence of initial events — :class:`Converge` (drain to a steady state
along one canonical execution) and :class:`FailSession` (a session flap
losing the queued messages and delivering a withdrawal to both peers, the
Appendix A failure event) — which is how withdrawal/flap transients are
explored: converge first, flap a session, then explore every re-convergence
interleaving.
"""

from __future__ import annotations

import copy
import heapq
import itertools
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.config.objects import NetworkConfig
from repro.exceptions import ProtocolError
from repro.modelcheck.hashing import ZobristFingerprinter
from repro.modelcheck.por import (
    AmpleSelector,
    ChannelIndependence,
    EMPTY_SLEEP,
    ReductionStatistics,
    merged_sleep_for_requeue,
    successor_sleep,
)
from repro.pec.classes import PacketEquivalenceClass
from repro.protocols.base import PathVectorInstance
from repro.protocols.rpvp import RpvpState
from repro.protocols.spvp import (
    Channel,
    ReferenceSpvpSimulator,
    SpvpState,
    SpvpStepper,
)
from repro.topology.failures import FailureScenario
from repro.transient.properties import TransientForwarding, TransientProperty

#: Accepted values of :attr:`TransientOptions.por`.
POR_MODES = ("ample", "sleep", "full")

#: Accepted values of :attr:`TransientOptions.frontier`.
FRONTIER_MODES = ("fifo", "priority")


@dataclass(frozen=True)
class TransientOptions:
    """Tuning knobs of one transient exploration.

    ``por`` selects the partial-order reduction: ``"ample"`` (ample sets +
    sleep sets, the default), ``"sleep"`` (sleep sets only — prunes
    redundant transitions but visits every state), or ``"full"`` (no
    reduction — the oracle mode the equivalence tests pin against).

    ``frontier`` selects the exploration order: ``"fifo"`` (plain BFS, the
    default and the order the naive oracle pins) or ``"priority"``, a
    deepest-first heap with fewest-pending-channels tie-breaking — the
    search commits to the branch closest to convergence and backtracks
    locally.  Forced singleton amples — states where the reduction proved
    only one (harmless) delivery needs exploring — strictly shrink the
    pending set, so forced chains drain straight through; BFS instead
    parks every chain link behind the combinatorial frontier of the same
    depth.
    Convergence on the fig7a fat-tree instance sits ~64 deliveries deep
    while a 20k-state BFS reaches depth ~9, so this is the difference
    between small ``max_states`` budgets reaching converged states or
    none at all.  When a descent meets a state whose entire expansion is
    asleep it re-expands with the sleep set ignored
    (``ReductionStatistics.sleep_fallbacks``) — on a budgeted search the
    sibling branch covering those interleavings may never be reached.  On
    a complete (un-truncated, un-depth-pruned) search, verdicts and
    converged states are order-independent in every mode, and ``"full"``
    explorations visit the identical state set; ample/sleep priority runs
    may visit a few extra states through those fallbacks.  Truncated
    searches cover different slices, which is the point.

    ``minimize_witnesses`` post-processes every violation witness through
    :func:`repro.transient.witness.minimize_witness`: deliveries
    independent of the violation's receiver chain are dropped while the
    shortened sequence still replays to the same violating property and
    message.

    ``rank_immunity`` (``"ample"`` mode only) enables the per-session
    refinement of the ample activity closure: sessions whose static rank
    bound (:meth:`~repro.protocols.base.PathVectorInstance.
    session_rank_bound`) proves they can never dislodge the receiver's
    current best do not propagate activity, so receivers mid-convergence
    can still be proven frozen.  Sound (verdicts and converged states are
    preserved; the equivalence suite pins this against ``por="full"``);
    disable to reproduce the pre-refinement reduction exactly, e.g. when
    comparing reduction ledgers across versions.
    """

    max_states: int = 20_000
    max_depth: int = 64
    stop_at_first_violation: bool = True
    collect_converged: bool = False
    por: str = "ample"
    frontier: str = "fifo"
    minimize_witnesses: bool = False
    rank_immunity: bool = True
    #: Per-task supervision knobs for campaign runs (see
    #: :attr:`~repro.core.options.PlanktonOptions.task_timeout` /
    #: ``task_retries``).  ``None`` inherits the campaign's
    #: :class:`~repro.core.options.PlanktonOptions` values; like those, they
    #: shape *how* results are computed, never *what* they contain, so the
    #: incremental cache excludes them from transient fingerprints.
    task_timeout: Optional[float] = None
    task_retries: Optional[int] = None
    #: Lifecycle-scenario campaign knobs (``src/repro/scenarios/``): when
    #: ``scenario_events > 0`` the campaign task graph crosses every failure
    #: scenario with every symmetry-reduced event scenario of up to that many
    #: events; ``scenario_kinds`` restricts the event vocabulary (empty = all
    #: kinds).  Both shape *what* is verified, so — unlike the supervision
    #: knobs above — they participate in the incremental cache fingerprint.
    scenario_events: int = 0
    scenario_kinds: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.por not in POR_MODES:
            raise ValueError(f"unknown POR mode {self.por!r}; choose from {POR_MODES}")
        if self.frontier not in FRONTIER_MODES:
            raise ValueError(
                f"unknown frontier mode {self.frontier!r}; choose from {FRONTIER_MODES}"
            )
        if self.task_retries is not None and self.task_retries < 0:
            raise ValueError("task_retries must be >= 0")
        if self.scenario_events < 0:
            raise ValueError("scenario_events must be >= 0")
        object.__setattr__(self, "scenario_kinds", tuple(self.scenario_kinds))
        if self.scenario_kinds:
            from repro.scenarios.enumerator import EVENT_KINDS

            for kind in self.scenario_kinds:
                if kind not in EVENT_KINDS:
                    raise ValueError(
                        f"unknown event kind {kind!r}; choose from {EVENT_KINDS}"
                    )


# --------------------------------------------------------------------------- initial events
@dataclass(frozen=True)
class FailSession:
    """Initial event: flap the session between ``a`` and ``b`` (Appendix A).

    Queued messages on the session are lost and each peer sees a withdrawal
    — the root of every withdrawal/flap transient exploration.
    """

    a: str
    b: str

    def apply(self, stepper: SpvpStepper, state: SpvpState) -> SpvpState:
        return stepper.fail_session(state, self.a, self.b)

    def apply_to_simulator(self, simulator: ReferenceSpvpSimulator) -> None:
        simulator.fail_session(self.a, self.b)

    def describe(self) -> str:
        return f"fail-session {self.a}<->{self.b}"


@dataclass(frozen=True)
class Converge:
    """Initial event: drain all buffers along one canonical execution.

    Always delivers the first pending channel (slot order; see
    :meth:`SpvpStepper.drain`), so the fast and the naive explorations start
    their perturbed searches from the same steady state.  Raises
    :class:`ProtocolError` when the instance does not converge within
    ``max_steps`` (divergent configurations).
    """

    max_steps: int = 100_000

    def apply(self, stepper: SpvpStepper, state: SpvpState) -> SpvpState:
        return stepper.drain(state, max_steps=self.max_steps)

    def apply_to_simulator(self, simulator: ReferenceSpvpSimulator) -> None:
        # The reference simulator is deliberately kept independent of the
        # persistent core, so the drain is mirrored here; the lockstep flap
        # property test pins the two against each other (including the
        # divergence ProtocolError).
        steps = 0
        while not simulator.is_converged():
            if steps >= self.max_steps:
                raise ProtocolError(
                    f"SPVP did not converge within {self.max_steps} steps for "
                    f"{simulator.instance.name} (possibly a divergent configuration)"
                )
            simulator.step(simulator.pending_messages()[0])
            steps += 1

    def describe(self) -> str:
        return "converge (canonical delivery order)"


def _apply_initial_event(stepper: SpvpStepper, state: SpvpState, event) -> SpvpState:
    """Apply one initial event to a persistent state (duck-typed hook)."""
    if hasattr(event, "apply"):
        return event.apply(stepper, state)
    if callable(event):
        return event(stepper, state)
    raise TypeError(f"initial event {event!r} has no apply(stepper, state) hook")


@dataclass(frozen=True)
class TransientViolation:
    """One transient property violation with the event sequence reaching it.

    ``depth`` is the search depth at which the violation was *discovered*;
    with :attr:`TransientOptions.minimize_witnesses` the recorded witness
    may be a shorter replay of that discovery, so its length can be below
    ``depth`` (plus any initial-event prefix).
    """

    property_name: str
    message: str
    depth: int
    converged: bool
    witness: Tuple[str, ...]

    def render(self) -> str:
        lines = [
            f"property  : {self.property_name}",
            f"violation : {self.message}",
            f"state     : {'converged' if self.converged else f'transient (depth {self.depth})'}",
            "event sequence:",
        ]
        if self.witness:
            lines.extend(f"  {index + 1}. {event}" for index, event in enumerate(self.witness))
        else:
            lines.append("  (initial state)")
        return "\n".join(lines)


@dataclass
class TransientAnalysisResult:
    """Aggregate result of one transient exploration."""

    states_explored: int = 0
    converged_states: int = 0
    max_depth_reached: int = 0
    truncated: bool = False
    elapsed_seconds: float = 0.0
    violations: List[TransientViolation] = field(default_factory=list)
    #: Converged best-path assignments, populated when the analyzer was built
    #: with ``collect_converged=True`` (the Theorem 1 cross-model check).
    converged_rpvp_states: List[RpvpState] = field(default_factory=list)
    #: What the partial-order reduction did (None for the naive oracle).
    reduction: Optional[ReductionStatistics] = None

    @property
    def holds(self) -> bool:
        """True when no transient property was violated in the explored states."""
        return not self.violations

    def summary(self) -> str:
        verdict = "HOLDS" if self.holds else f"VIOLATED ({len(self.violations)} violation(s))"
        reduction = ""
        if self.reduction is not None and self.reduction.mode != "full":
            reduction = (
                f", por {self.reduction.mode} "
                f"({self.reduction.transition_reduction_ratio():.1f}x transition reduction)"
            )
        return (
            f"transient analysis: {verdict}; {self.states_explored} state(s), "
            f"{self.converged_states} converged, max depth {self.max_depth_reached}, "
            f"truncated: {'yes (state budget reached)' if self.truncated else 'no'}, "
            f"{self.elapsed_seconds:.3f}s{reduction}"
        )

    def render(self) -> str:
        """Multi-line report: summary, reduction ledger, violations."""
        lines = [self.summary()]
        if self.reduction is not None:
            lines.append(self.reduction.describe())
        for violation in self.violations:
            lines.append("")
            lines.append(violation.render())
        return "\n".join(lines)

    def stats_signature(self) -> Tuple:
        """Everything observable about the exploration except wall-clock time.

        Used by the equivalence tests to assert the incremental and the naive
        explorations are bit-identical.  (The reduction ledger is excluded:
        it describes *how* the search ran, not what it observed.)
        """
        return (
            self.states_explored,
            self.converged_states,
            self.max_depth_reached,
            self.truncated,
            tuple(
                (v.property_name, v.message, v.depth, v.converged, v.witness)
                for v in self.violations
            ),
        )

    def verdict_signature(self) -> Tuple:
        """What every sound reduction must preserve: the per-property verdict
        and the set of converged best-path assignments.

        Unlike :meth:`stats_signature` this is comparable across POR modes:
        reduced runs explore fewer states and may reach a violating state
        through a different (shorter or permuted) witness, but they must
        agree on *which properties* are violated and on the converged
        states (the SPVP deadlocks, which ample sets provably preserve).
        """
        return (
            tuple(sorted({v.property_name for v in self.violations})),
            frozenset(
                tuple(
                    sorted(
                        (node, route.path if route is not None else None)
                        for node, route in state.as_dict().items()
                    )
                )
                for state in self.converged_rpvp_states
            ),
        )


class TransientAnalyzer:
    """Breadth-first exploration of SPVP states checking transient properties."""

    def __init__(
        self,
        instance: PathVectorInstance,
        max_states: int = 20_000,
        max_depth: int = 64,
        stop_at_first_violation: bool = True,
        collect_converged: bool = False,
        por: str = "ample",
        frontier: str = "fifo",
        minimize_witnesses: bool = False,
        rank_immunity: bool = True,
        options: Optional[TransientOptions] = None,
    ) -> None:
        if options is None:
            options = TransientOptions(
                max_states=max_states,
                max_depth=max_depth,
                stop_at_first_violation=stop_at_first_violation,
                collect_converged=collect_converged,
                por=por,
                frontier=frontier,
                minimize_witnesses=minimize_witnesses,
                rank_immunity=rank_immunity,
            )
        else:
            overridden = {
                name: value
                for name, value in (
                    ("max_states", max_states),
                    ("max_depth", max_depth),
                    ("stop_at_first_violation", stop_at_first_violation),
                    ("collect_converged", collect_converged),
                    ("por", por),
                    ("frontier", frontier),
                    ("minimize_witnesses", minimize_witnesses),
                    ("rank_immunity", rank_immunity),
                )
                if value != TransientOptions.__dataclass_fields__[name].default
            }
            if overridden:
                raise ValueError(
                    "pass either individual keyword arguments or options=, "
                    f"not both (got options= and {sorted(overridden)})"
                )
        self.instance = instance
        self.options = options
        self.max_states = options.max_states
        self.max_depth = options.max_depth
        self.stop_at_first_violation = options.stop_at_first_violation
        self.collect_converged = options.collect_converged
        self.por = options.por
        self.frontier_mode = options.frontier
        self.minimize_witnesses = options.minimize_witnesses
        self.rank_immunity = options.rank_immunity
        #: Set for the duration of one analyze() call when witnesses are
        #: minimised (the replayer needs the stepper and the search root).
        self._stepper: Optional[SpvpStepper] = None
        self._root: Optional[SpvpState] = None

    # ------------------------------------------------------------------ exploration
    def analyze(
        self,
        properties: Sequence[TransientProperty],
        initial_events: Sequence[object] = (),
    ) -> TransientAnalysisResult:
        """Explore reachable SPVP states and check ``properties`` on each.

        ``initial_events`` perturb the root before the search starts (e.g.
        ``[Converge(), FailSession("a", "b")]`` explores the transients of a
        session flap out of a steady state).
        """
        if not properties:
            raise ValueError("at least one transient property is required")
        started = time.perf_counter()
        result = TransientAnalysisResult()
        reduction = ReductionStatistics(mode=self.por)
        result.reduction = reduction

        stepper = SpvpStepper(self.instance)
        # Bind the fingerprinter to the stepper's intern table: state slots
        # already hold table ids, so every Zobrist component is a dict lookup
        # keyed on (slot, id) — no route decoding or path hashing.
        hasher = ZobristFingerprinter(stepper.table)
        hasher.state_bytes_per_state = 64 + 4 * stepper.space.total_slots
        root = stepper.initial_state()
        for event in initial_events:
            root = _apply_initial_event(stepper, root, event)
        self._stepper = stepper
        self._root = root
        use_priority = self.frontier_mode == "priority"

        use_sleep = self.por in ("ample", "sleep")
        independence = ChannelIndependence(self.instance) if use_sleep else None
        selector = (
            AmpleSelector(
                self.instance,
                independence,
                rank_immunity=self.rank_immunity,
                reduction=reduction,
            )
            if self.por == "ample"
            else None
        )

        #: fingerprint -> the sleep set the state was admitted/last queued with.
        visited: Dict[int, FrozenSet[Channel]] = {root.fingerprint(hasher): EMPTY_SLEEP}
        #: Frontier entries are (state, depth, sleep set, fresh); ``fresh``
        #: is False only for the sleep-set requeues of already-counted
        #: states.  The fifo frontier is plain BFS; the priority frontier
        #: is a deepest-first heap with fewest-pending-channels tie-breaks
        #: (insertion order last, keeping the search deterministic).
        fifo: Deque[Tuple[SpvpState, int, FrozenSet[Channel], bool]] = deque()
        heap: List[Tuple[int, int, int, SpvpState, int, FrozenSet[Channel], bool]] = []
        counter = itertools.count()

        def push(state: SpvpState, depth: int, sleep: FrozenSet[Channel], fresh: bool) -> None:
            if use_priority:
                heapq.heappush(
                    heap, (-depth, len(state.pending), next(counter), state, depth, sleep, fresh)
                )
            else:
                fifo.append((state, depth, sleep, fresh))

        push(root, 0, EMPTY_SLEEP, True)
        while fifo or heap:
            if use_priority:
                _neg_depth, _key, _seq, state, depth, sleep, fresh = heapq.heappop(heap)
            else:
                state, depth, sleep, fresh = fifo.popleft()
            converged = state.is_converged()
            if fresh:
                result.states_explored += 1
                result.max_depth_reached = max(result.max_depth_reached, depth)
                if converged:
                    result.converged_states += 1
                    if self.collect_converged:
                        result.converged_rpvp_states.append(state.converged_rpvp())
                stop = self._check_state(state, converged, depth, properties, result)
                if stop:
                    break

            if converged:
                continue
            if depth >= self.max_depth:
                reduction.depth_pruned += 1
                continue

            enabled = state.pending_channels()
            reduced = False
            if selector is not None:
                choice = selector.select(state, enabled)
                expansion: List[Channel] = list(choice.channels)
                reduced = choice.reduced
            else:
                expansion = list(enabled)

            executed: List[Channel] = []
            expanded_count = 0
            index = 0
            active_sleep = sleep
            slept_here = 0
            while index < len(expansion):
                channel = expansion[index]
                index += 1
                if use_sleep and channel in active_sleep:
                    reduction.transitions_slept += 1
                    slept_here += 1
                    if (
                        use_priority
                        and index == len(expansion)
                        and expanded_count == 0
                    ):
                        # Every enabled delivery is asleep.  On a complete
                        # search the covering sibling branch gets explored
                        # eventually, but a budgeted priority descent may
                        # never reach it — and this state would become a
                        # false dead end on the only drained path.  Re-run
                        # the expansion ignoring the sleep set (sound:
                        # exploring more interleavings never loses states),
                        # and un-book the skips — those transitions are
                        # about to be expanded, not pruned.
                        reduction.sleep_fallbacks += 1
                        reduction.transitions_slept -= slept_here
                        slept_here = 0
                        active_sleep = EMPTY_SLEEP
                        index = 0
                    continue
                _event, successor = stepper.deliver(state, channel)
                if reduced:
                    # Visibility proviso (C2), re-checked on the actual
                    # successor: a reduced expansion may only contain no-op
                    # deliveries.  The ample analysis guarantees this; if a
                    # delivery surprises it, widen to the full enabled set
                    # (sound: the ample channels stay in the expansion).
                    old_best = state.best_of(channel[1])
                    new_best = _event.new_best
                    if (old_best.path if old_best is not None else None) != (
                        new_best.path if new_best is not None else None
                    ):
                        reduced = False
                        reduction.proviso_fallbacks += 1
                        present = set(expansion)
                        expansion.extend(c for c in enabled if c not in present)
                succ_sleep = (
                    successor_sleep(independence, active_sleep, executed, channel)
                    if use_sleep
                    else EMPTY_SLEEP
                )
                executed.append(channel)
                expanded_count += 1
                fingerprint = successor.fingerprint(hasher)
                stored = visited.get(fingerprint)
                if stored is None:  # values are frozensets, never None
                    if len(visited) >= self.max_states:
                        result.truncated = True
                        break
                    visited[fingerprint] = succ_sleep
                    push(successor, depth + 1, succ_sleep, True)
                elif use_sleep:
                    merged = merged_sleep_for_requeue(stored, succ_sleep)
                    if merged is not None:
                        visited[fingerprint] = merged
                        reduction.sleep_requeues += 1
                        push(successor, depth + 1, merged, False)
            if fresh:
                reduction.observe_expansion(
                    enabled=len(enabled), expanded=expanded_count, reduced=reduced
                )
            else:
                # Requeued (sleep-merge) passes count toward the transition
                # totals — both sides, so the enabled/expanded ratio stays an
                # honest effort comparison — but never toward the state tallies.
                reduction.transitions_enabled += len(enabled)
                reduction.transitions_expanded += expanded_count

        self._stepper = None
        self._root = None
        result.elapsed_seconds = time.perf_counter() - started
        return result

    # ------------------------------------------------------------------ helpers
    def _check_state(
        self,
        state: SpvpState,
        converged: bool,
        depth: int,
        properties: Sequence[TransientProperty],
        result: TransientAnalysisResult,
    ) -> bool:
        """Check every property on one state; returns True when the search should stop."""
        forwarding = TransientForwarding.from_best_paths(state.best_map())
        for prop in properties:
            message = prop.check(forwarding, converged)
            if message is None:
                continue
            witness_state = state
            if self.minimize_witnesses and self._stepper is not None:
                from repro.transient.witness import minimize_witness

                witness_state = minimize_witness(
                    self._stepper, self._root, state, prop, message
                )
            result.violations.append(
                TransientViolation(
                    property_name=prop.name,
                    message=message,
                    depth=depth,
                    converged=converged,
                    witness=tuple(
                        event.describe() for event in witness_state.witness_events()
                    ),
                )
            )
            if self.stop_at_first_violation:
                return True
        return False


class NaiveTransientAnalyzer(TransientAnalyzer):
    """The pre-refactor exploration: deepcopy a simulator per successor.

    Kept as the oracle the equivalence tests and the throughput benchmark
    compare :class:`TransientAnalyzer` against: it explores over the mutable
    :class:`ReferenceSpvpSimulator`, cloning the whole simulator (best,
    rib-ins, buffers *and* event history) with ``copy.deepcopy`` for every
    successor and keying the visited set on a full (best, rib-in, buffers)
    signature tuple.  It never reduces (``full`` semantics regardless of the
    ``por`` option); budget accounting matches the incremental analyzer so
    ``por="full"`` runs produce bit-identical
    :class:`TransientAnalysisResult`s.
    """

    def analyze(
        self,
        properties: Sequence[TransientProperty],
        initial_events: Sequence[object] = (),
    ) -> TransientAnalysisResult:
        if not properties:
            raise ValueError("at least one transient property is required")
        started = time.perf_counter()
        result = TransientAnalysisResult()

        root = ReferenceSpvpSimulator(self.instance, seed=0)
        for event in initial_events:
            if hasattr(event, "apply_to_simulator"):
                event.apply_to_simulator(root)
            else:
                raise TypeError(
                    f"initial event {event!r} has no apply_to_simulator hook"
                )
        visited: Set[Tuple] = {self._signature(root)}
        frontier: Deque[Tuple[ReferenceSpvpSimulator, int]] = deque([(root, 0)])

        while frontier:
            simulator, depth = frontier.popleft()
            result.states_explored += 1
            result.max_depth_reached = max(result.max_depth_reached, depth)
            converged = simulator.is_converged()
            if converged:
                result.converged_states += 1
                if self.collect_converged:
                    result.converged_rpvp_states.append(simulator.converged_state())

            stop = self._check_simulator(simulator, converged, depth, properties, result)
            if stop:
                break

            if converged or depth >= self.max_depth:
                continue

            for channel in simulator.pending_messages():
                successor = copy.deepcopy(simulator)
                successor.step(channel)
                signature = self._signature(successor)
                if signature in visited:
                    continue
                if len(visited) >= self.max_states:
                    result.truncated = True
                    break
                visited.add(signature)
                frontier.append((successor, depth + 1))

        result.elapsed_seconds = time.perf_counter() - started
        return result

    def _check_simulator(
        self,
        simulator: ReferenceSpvpSimulator,
        converged: bool,
        depth: int,
        properties: Sequence[TransientProperty],
        result: TransientAnalysisResult,
    ) -> bool:
        forwarding = TransientForwarding.from_best_paths(simulator.best)
        for prop in properties:
            message = prop.check(forwarding, converged)
            if message is None:
                continue
            result.violations.append(
                TransientViolation(
                    property_name=prop.name,
                    message=message,
                    depth=depth,
                    converged=converged,
                    witness=tuple(event.describe() for event in simulator.history),
                )
            )
            if self.stop_at_first_violation:
                return True
        return False

    @staticmethod
    def _signature(simulator: ReferenceSpvpSimulator) -> Tuple:
        """A hashable signature of the SPVP state (best, rib-in, buffers)."""
        best = tuple(sorted(
            (node, route.path if route is not None else None)
            for node, route in simulator.best.items()
        ))
        rib_in = tuple(sorted(
            (key, route.path if route is not None else None)
            for key, route in simulator.rib_in.items()
        ))
        buffers = tuple(sorted(
            (
                key,
                tuple(route.path if route is not None else None for route in queue),
            )
            for key, queue in simulator.buffers.items()
        ))
        return (best, rib_in, buffers)


# --------------------------------------------------------------------------- engine routing
@dataclass(frozen=True)
class TransientTaskConfig:
    """The transient payload of one engine :class:`~repro.engine.graph.TaskSpec`.

    Everything a worker needs to run one transient analysis — the properties,
    the exploration budgets, the POR mode and the initial perturbation — in a
    picklable bundle, so failure-scenario transient campaigns ride the same
    pool backends and early cancellation as converged-state verification.
    """

    properties: Tuple[TransientProperty, ...]
    options: TransientOptions = field(default_factory=TransientOptions)
    initial_events: Tuple[object, ...] = ()
    #: Description of the lifecycle scenario baked into ``initial_events``
    #: (``None`` for plain failure tasks); labels the task's campaign runs.
    scenario: Optional[str] = None


@dataclass
class TransientCampaignRun:
    """One analysed (failure scenario, BGP prefix) pair of a campaign."""

    pec_index: int
    failure: FailureScenario
    prefix: str
    result: TransientAnalysisResult
    #: The lifecycle scenario this run perturbed with (None = none).
    scenario: Optional[str] = None

    @property
    def violations(self) -> List[TransientViolation]:
        """The run's violations (the engine's early-stop hook reads this)."""
        return self.result.violations


@dataclass
class TransientCampaignResult:
    """All runs of one transient campaign, in task-graph order."""

    runs: List[TransientCampaignRun] = field(default_factory=list)
    failure_scenarios: int = 0
    #: Lifecycle event scenarios crossed with the failure scenarios
    #: (0 = the campaign did not enumerate event scenarios).
    event_scenarios: int = 0
    elapsed_seconds: float = 0.0
    #: Cache accounting when the campaign ran through the incremental
    #: service (:class:`repro.incremental.service.IncrementalRunStats`).
    incremental: Optional[object] = None
    #: Tasks that exhausted their retries (supervision layer): the campaign
    #: degraded to an explicitly-partial result instead of raising.
    errors: List = field(default_factory=list)

    @property
    def complete(self) -> bool:
        """Whether every campaign task produced a result (no ``errors``)."""
        return not self.errors

    @property
    def holds(self) -> bool:
        return all(run.result.holds for run in self.runs)

    @property
    def violations(self) -> List[TransientViolation]:
        collected: List[TransientViolation] = []
        for run in self.runs:
            collected.extend(run.result.violations)
        return collected

    def by_failure(self) -> Dict[str, Dict[str, TransientAnalysisResult]]:
        """Results keyed by failure description, then by prefix."""
        grouped: Dict[str, Dict[str, TransientAnalysisResult]] = {}
        for run in self.runs:
            key = ", ".join(str(link) for link in run.failure.failed_links) or "no failures"
            grouped.setdefault(key, {})[run.prefix] = run.result
        return grouped

    def summary(self) -> str:
        verdict = (
            "HOLDS" if self.holds else f"VIOLATED ({len(self.violations)} violation(s))"
        )
        if self.errors:
            verdict += f" [PARTIAL: {len(self.errors)} task(s) failed]"
        states = sum(run.result.states_explored for run in self.runs)
        truncated = sum(1 for run in self.runs if run.result.truncated)
        scenarios = (
            f" x {self.event_scenarios} event scenario(s)"
            if self.event_scenarios
            else ""
        )
        return (
            f"transient campaign: {verdict}; {len(self.runs)} run(s) over "
            f"{self.failure_scenarios} failure scenario(s){scenarios}, {states} state(s), "
            f"{truncated} truncated, {self.elapsed_seconds:.3f}s"
        )


class _TransientAggregator:
    """Duck-typed engine aggregator for transient campaigns.

    Implements the surface the execution backends drive (``record``,
    ``upstream_planes``, ``has_result``, ``stop_requested``); transient
    tasks have no dependency edges, so upstream data planes are empty.
    """

    def __init__(self, graph, options) -> None:
        self._graph = graph
        self._options = options
        self._runs_by_task: Dict[int, List[TransientCampaignRun]] = {}
        self._failures: Dict[int, object] = {}  # task id -> TaskFailure
        self.stop_requested = False

    def record(self, result) -> None:
        self._runs_by_task[result.task_id] = list(result.runs)
        if result.has_violation and self._options.stop_at_first_violation:
            self.stop_requested = True

    def record_failure(self, spec, error, attempts: int) -> None:
        from repro.engine.supervision import task_failure_from

        self._failures[spec.task_id] = task_failure_from(spec, error, attempts)

    @property
    def failed_tasks(self):
        return set(self._failures)

    def upstream_planes(self, spec) -> Dict[int, List]:
        return {}

    def has_result(self, task_id: int) -> bool:
        return task_id in self._runs_by_task or task_id in self._failures

    def finalize(self) -> TransientCampaignResult:
        campaign = TransientCampaignResult(
            failure_scenarios=self._graph.failure_scenarios,
            event_scenarios=getattr(self._graph, "event_scenarios", 0),
        )
        for task in self._graph.tasks:
            campaign.runs.extend(self._runs_by_task.get(task.task_id, []))
            failure = self._failures.get(task.task_id)
            if failure is not None:
                campaign.errors.append(failure)
        return campaign


def execute_transient_task(plankton, spec, should_cancel=None):
    """Run one transient task (the engine worker's ``kind == "transient"`` path).

    Analyses every BGP prefix of the task's PEC under the task's failure
    scenario; ``should_cancel`` is polled between prefixes so a cross-worker
    stop request takes effect mid-task.
    """
    from repro.core.network_model import DependencyContext, PecExplorer
    from repro.engine.graph import TaskResult

    config: TransientTaskConfig = spec.transient
    pec = plankton.pec_by_index(spec.pec_index)
    result = TaskResult(task_id=spec.task_id)
    explorer = PecExplorer(
        plankton.network,
        pec,
        spec.failure,
        plankton.options,
        dependency_context=DependencyContext(),
        ospf_computation=plankton.ospf_computation,
    )
    for prefix, devices in pec.bgp_origins:
        if not devices:
            continue
        if should_cancel is not None and should_cancel():
            result.cancelled = True
            break
        instance = explorer.bgp_instance(prefix)
        analyzer = TransientAnalyzer(instance, options=config.options)
        analysis = analyzer.analyze(
            config.properties, initial_events=config.initial_events
        )
        # Every BGP prefix of the PEC is analysed even after a violation
        # (each analysis already stops at its own first violation when asked
        # to): callers get one result per prefix, and stop-at-first only
        # cancels *other tasks* through the aggregator's stop flag.
        result.runs.append(
            TransientCampaignRun(
                pec_index=pec.index,
                failure=spec.failure,
                prefix=str(prefix),
                result=analysis,
                scenario=config.scenario,
            )
        )
    return result


def analyze_pec_transients_over_failures(
    network: NetworkConfig,
    pec: PacketEquivalenceClass,
    properties: Sequence[TransientProperty],
    options=None,
    transient: Optional[TransientOptions] = None,
    failures: Optional[Sequence[FailureScenario]] = None,
    initial_events: Sequence[object] = (),
    scenarios: Optional[Sequence[object]] = None,
    plankton=None,
) -> TransientCampaignResult:
    """Run a transient campaign over failure scenarios through the engine.

    One engine task per (PEC, failure scenario) — the scenarios come from
    ``failures`` when given, otherwise from the §4.3 Link Equivalence Class
    reduction under ``options.max_failures`` — executed on the backend the
    :class:`~repro.core.options.PlanktonOptions` select (serial, or the
    persistent process pool with cross-worker early cancellation).

    ``scenarios`` (a sequence of :class:`repro.scenarios.Scenario` values)
    crosses every failure scenario with every lifecycle event scenario — one
    task per (failure, scenario) pair, the scenario's events appended to
    ``initial_events``.  When omitted and ``transient.scenario_events > 0``,
    the graph builder derives the scenario list with the symmetry-reduced
    k-event enumerator (:func:`repro.scenarios.enumerate_event_scenarios`).

    ``transient.stop_at_first_violation`` governs *all* transient stopping:
    each per-prefix analysis, and the campaign-level cancellation of
    still-queued failure-scenario tasks (the engine's stop flag is aligned
    to it, so ``PlanktonOptions.stop_at_first_violation`` — a converged-state
    verification knob — cannot silently cut an exhaustive campaign short).

    Callers looping over many PECs of one network should pass their own
    ``plankton`` (a :class:`~repro.core.verifier.Plankton` built for
    ``network``) so the PEC partition, dependency graph and OSPF computation
    are built once instead of per call; its options then serve as the
    campaign options and must already carry the transient stop flag.
    """
    import dataclasses

    from repro.core.options import PlanktonOptions
    from repro.core.verifier import Plankton
    from repro.engine import EngineContext, select_backend
    from repro.engine.graph import build_transient_task_graph

    started = time.perf_counter()
    transient = transient or TransientOptions()
    if plankton is not None:
        if options is not None and options is not plankton.options:
            raise ValueError("pass either plankton= or options=, not both")
        options = plankton.options
        if options.stop_at_first_violation != transient.stop_at_first_violation:
            # A mismatched flag would let the worker-side chunk early-stop
            # silently drop scenario runs the caller asked for.
            raise ValueError(
                "plankton.options.stop_at_first_violation must match "
                "transient.stop_at_first_violation for a campaign"
            )
    else:
        options = options or PlanktonOptions()
        if options.stop_at_first_violation != transient.stop_at_first_violation:
            options = dataclasses.replace(
                options, stop_at_first_violation=transient.stop_at_first_violation
            )
        plankton = Plankton(network, options)
    config = TransientTaskConfig(
        properties=tuple(properties),
        options=transient,
        initial_events=tuple(initial_events),
    )
    graph = build_transient_task_graph(
        network,
        plankton.pec_by_index(pec.index),
        options,
        config,
        failures=failures,
        scenarios=scenarios,
    )
    aggregator = _TransientAggregator(graph, options)
    backend = select_backend(options, graph)
    # Campaign-specific supervision knobs (a transient exploration's natural
    # deadline differs from a converged-state check's) override the
    # verifier's without rebuilding it.
    supervision = {}
    if transient.task_timeout is not None:
        supervision["task_timeout"] = transient.task_timeout
    if transient.task_retries is not None:
        supervision["task_retries"] = transient.task_retries
    context = EngineContext(
        plankton=plankton,
        policies=[],
        options_override=dataclasses.replace(options, **supervision) if supervision else None,
    )
    backend.execute(graph, context, aggregator)
    campaign = aggregator.finalize()
    campaign.elapsed_seconds = time.perf_counter() - started
    return campaign


def analyze_pec_transients(
    network: NetworkConfig,
    pec: PacketEquivalenceClass,
    properties: Sequence[TransientProperty],
    failure: Optional[FailureScenario] = None,
    max_states: int = 20_000,
    max_depth: int = 64,
    por: str = "ample",
    initial_events: Sequence[object] = (),
) -> Dict[str, TransientAnalysisResult]:
    """Run transient analysis for every BGP prefix of ``pec``.

    Returns one result per analysed prefix (keyed by its text form).  PECs
    with no BGP origin have nothing to analyse: OSPF is modelled as a
    deterministic computation, so its transients are not represented in this
    reproduction (the same simplification the paper makes for converged-state
    checking applies here).

    This is the single-scenario convenience wrapper around
    :func:`analyze_pec_transients_over_failures` (and therefore routes
    through the execution engine like everything else).
    """
    campaign = analyze_pec_transients_over_failures(
        network,
        pec,
        properties,
        transient=TransientOptions(max_states=max_states, max_depth=max_depth, por=por),
        failures=[failure or FailureScenario()],
        initial_events=initial_events,
    )
    return {run.prefix: run.result for run in campaign.runs}
