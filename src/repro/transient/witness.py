"""POR-aware minimisation of transient counterexample witnesses.

A transient violation's witness is the BFS delivery sequence that reached
the violating state.  Breadth-first order makes it short in *depth*, but it
still interleaves deliveries that have nothing to do with the violation —
convergence activity at distant routers that happened to be queued first.
This module shrinks a witness after the fact:

1. Compute the violation's **receiver chain**: walking the witness
   backwards from the violating state, a delivery is *relevant* when its
   receiver is one of the nodes implicated in the violation (the
   forwarding cycle / dead end) or the sender of a later relevant delivery
   — the same dependency notion the partial-order reduction uses
   (same-receiver deliveries conflict; a delivery can enable a later one
   only by making its receiver re-advertise).
2. Try dropping every delivery *outside* that chain at once, then keep
   greedily dropping single deliveries while the shortened sequence still
   **replays**: every delivery must be enabled in turn from the root, and
   the final state must violate the same property with the same message.

Replay validation makes the minimisation sound regardless of how sharp the
receiver-chain heuristic is: a drop that changes enabledness or the
violation is rejected.  The result is a witness that is a subsequence of
the original, replays from the same root, and ends in a state exhibiting
the same violation.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

from repro.exceptions import ProtocolError
from repro.protocols.spvp import Channel, SpvpEvent, SpvpState, SpvpStepper
from repro.transient.properties import TransientForwarding, TransientProperty


def _replay(
    stepper: SpvpStepper, root: SpvpState, channels: Sequence[Channel]
) -> Optional[SpvpState]:
    """Deliver ``channels`` in order from ``root``; None when one is not enabled."""
    state = root
    for channel in channels:
        if channel not in state.pending:
            return None
        try:
            _event, state = stepper.deliver(state, channel)
        except ProtocolError:
            return None
    return state


def _violates(
    prop: TransientProperty, state: SpvpState, message: str
) -> bool:
    """Whether ``state`` exhibits the original violation (same message)."""
    forwarding = TransientForwarding.from_best_paths(state.best_map())
    return prop.check(forwarding, state.is_converged()) == message


def violation_nodes(state: SpvpState) -> Set[str]:
    """The nodes implicated in ``state``'s forwarding anomaly.

    The forwarding cycle when one exists, plus every dead-ended node —
    covering the shipped transient properties.  Callers fall back to all
    nodes when the set comes back empty (an unknown property shape).
    """
    forwarding = TransientForwarding.from_best_paths(state.best_map())
    implicated: Set[str] = set(forwarding.find_cycle() or ())
    implicated.update(forwarding.dead_ends())
    return implicated


def receiver_chain_indices(
    events: Sequence[SpvpEvent], relevant: Set[str]
) -> Set[int]:
    """Indices of witness deliveries on the violation's receiver chain.

    Walking backwards, a delivery is kept when its receiver is already
    relevant (it may have produced the receiver's final best path, or made
    it re-advertise toward another relevant node); its sender then becomes
    relevant too, because the delivered message had to be queued by one of
    the sender's own earlier best-path changes.
    """
    needed: Set[str] = set(relevant)
    kept: Set[int] = set()
    for index in range(len(events) - 1, -1, -1):
        event = events[index]
        if event.node in needed:
            kept.add(index)
            needed.add(event.peer)
    return kept


def minimize_witness(
    stepper: SpvpStepper,
    root: SpvpState,
    violating: SpvpState,
    prop: TransientProperty,
    message: str,
) -> SpvpState:
    """The violating state of a minimised replay of ``violating``'s witness.

    Returns a state whose :meth:`~repro.protocols.spvp.SpvpState.
    witness_events` chain is a (possibly equal) subsequence of the original
    witness, replays from ``root``, and violates ``prop`` with ``message``.
    The original state is returned unchanged when nothing can be dropped.
    """
    # The violating state's parent chain runs back through ``root`` to the
    # cold-start initial state, so its witness includes the deliveries of
    # any initial events (a pre-flap Converge() drain).  Only the suffix
    # explored *from the root* is up for minimisation — the prefix is the
    # perturbation setup, not interleaving choice.
    events = violating.witness_events()[len(root.witness_events()) :]
    if not events:
        return violating
    channels: List[Channel] = [(event.peer, event.node) for event in events]

    relevant = violation_nodes(violating)
    best_state = violating
    best_channels = channels

    def attempt(candidate: List[Channel]) -> bool:
        nonlocal best_state, best_channels
        final = _replay(stepper, root, candidate)
        if final is None or not _violates(prop, final, message):
            return False
        best_state = final
        best_channels = candidate
        return True

    # Fast path: drop everything off the receiver chain in one go.
    if relevant:
        kept = receiver_chain_indices(events, relevant)
        if len(kept) < len(channels):
            attempt([channels[i] for i in sorted(kept)])

    # Greedy fixpoint: keep dropping single deliveries while the witness
    # still replays to the same violation.  A successful drop at ``index``
    # leaves the positions below it untouched, so the downward scan
    # continues instead of restarting; the outer loop re-scans only until
    # nothing changes (a drop can unlock an earlier-failed one).  Witnesses
    # are depth-bounded, so the quadratic replay cost stays small.
    changed = True
    while changed:
        changed = False
        index = len(best_channels) - 1
        while index >= 0:
            candidate = best_channels[:index] + best_channels[index + 1 :]
            if attempt(candidate):
                changed = True
            index -= 1
    return best_state
