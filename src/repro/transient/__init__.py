"""Transient-state analysis (the paper's "future work" extension).

Plankton checks policies over *converged* data planes only; properties of the
convergence process itself — transient micro-loops, momentary black holes,
loss of reachability while routes are being withdrawn — are explicitly out of
scope for it (paper §3.5, §8).  This subpackage adds that capability on top of
the SPVP message-passing model: a bounded breadth-first exploration of message
interleavings, checking transient properties in every reachable state.
"""

from repro.transient.explorer import (
    Converge,
    FailSession,
    FRONTIER_MODES,
    NaiveTransientAnalyzer,
    POR_MODES,
    TransientAnalysisResult,
    TransientAnalyzer,
    TransientCampaignResult,
    TransientCampaignRun,
    TransientOptions,
    TransientTaskConfig,
    TransientViolation,
    analyze_pec_transients,
    analyze_pec_transients_over_failures,
)
from repro.transient.witness import minimize_witness
from repro.transient.properties import (
    AlwaysReaches,
    TransientBlackHoleFreedom,
    TransientForwarding,
    TransientLoopFreedom,
    TransientProperty,
)

__all__ = [
    "Converge",
    "FRONTIER_MODES",
    "minimize_witness",
    "FailSession",
    "NaiveTransientAnalyzer",
    "POR_MODES",
    "TransientAnalyzer",
    "TransientAnalysisResult",
    "TransientCampaignResult",
    "TransientCampaignRun",
    "TransientOptions",
    "TransientTaskConfig",
    "TransientViolation",
    "analyze_pec_transients",
    "analyze_pec_transients_over_failures",
    "TransientProperty",
    "TransientForwarding",
    "TransientLoopFreedom",
    "TransientBlackHoleFreedom",
    "AlwaysReaches",
]
