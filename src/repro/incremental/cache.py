"""Persistent per-PEC result cache with content fingerprints.

The cache answers one question for the incremental service: *is the stored
result of this PEC still valid for the current configuration, policy and
options?*  It does so by content addressing: every entry is keyed by a
fingerprint that hashes

* the PEC's identity (index, address range, contributing prefixes),
* the :func:`~repro.incremental.impact.config_slice` of everything the
  PEC's verification can read,
* the slices of every PEC in its dependency closure (a dirty upstream
  changes the fingerprint of all its dependents, which is exactly the
  "transitive closure over PEC dependency edges" rule),
* the policy and option serialisations, and
* the task shape of the PEC in the expanded task graph (failure scenario
  list, check/collect roles, dependent vs independent expansion mode).

If any input that could change the result changes, the key changes and the
lookup misses — so a fingerprint hit is a proof (modulo SHA-256 collisions)
that the cached result equals what a cold run would recompute.  Fingerprints
are built with :func:`hashlib.sha256` over canonical ``repr`` strings, never
Python's salted ``hash``, so they are stable across processes — which is
what lets a restarted service reload the JSON file and hit warm.

Entries round-trip through JSON: per-PEC task results (run records with
violations, trails and exploration statistics; converged data planes for
PECs that downstream PECs consume; transient campaign runs) are encoded by
the codec functions in this module and rebuilt bit-identically on decode.

The on-disk file is **crash-safe and corruption-safe**: writes go through a
temp-file rename under an advisory file lock (two concurrent writers
serialise instead of clobbering each other), the document carries a schema
version and a SHA-256 checksum of its canonical entry payload, and any file
that is unreadable, truncated, bit-flipped, checksum-less or from a
different schema version loads as *empty* with a logged warning — a cold
start is always correct; a misread entry never is.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

from repro.config.objects import NetworkConfig
from repro.core.options import PlanktonOptions
from repro.core.results import PecRunResult, Violation
from repro.core.scheduler import dependency_closure
from repro.dataplane.fib import DataPlane, FibEntry
from repro.incremental.impact import config_slice
from repro.modelcheck.explorer import ExplorationStatistics
from repro.modelcheck.por import ReductionStatistics
from repro.modelcheck.trail import Trail, TrailStep
from repro.netaddr import AddressRange, Prefix
from repro.pec.classes import PacketEquivalenceClass
from repro.pec.dependencies import PecDependencyGraph
from repro.protocols.base import RouteSource
from repro.topology.failures import FailureScenario

#: Bump when the entry schema or the fingerprint inputs change shape; old
#: cache files are discarded wholesale rather than misread.  v2 added the
#: payload checksum (v1 files start cold — their fingerprints predate the
#: supervision-era option fields anyway).  v3 added lifecycle scenarios to
#: transient runs and the (failure, scenario) pairs to the campaign task
#: shape, so v2 transient entries would be misattributed.
CACHE_SCHEMA_VERSION = 3

PathLike = Union[str, Path]

#: Cache integrity events (cold starts, corruption, lock contention) go
#: through the ``repro`` logger tree the CLI's ``-v`` surfaces.
LOG = logging.getLogger("repro.cache")


def _sha(token: object) -> str:
    return hashlib.sha256(repr(token).encode("utf-8")).hexdigest()


def _entries_checksum(entries_json: str) -> str:
    """SHA-256 over the canonical (sorted-key) entries serialisation."""
    return hashlib.sha256(entries_json.encode("utf-8")).hexdigest()


@contextmanager
def _advisory_lock(target: Path):
    """An exclusive advisory lock scoped to ``target``'s cache file.

    The lock lives in a sibling ``.lock`` file so the atomic
    ``os.replace`` of the cache file itself cannot swap the locked inode
    out from under a second process.  Advisory ``flock`` is cooperative —
    it serialises this module's readers and writers (two concurrent
    services sharing a cache directory), not arbitrary programs.  On
    platforms without ``fcntl`` the lock degrades to a no-op.
    """
    if fcntl is None:  # pragma: no cover - non-POSIX platforms
        yield
        return
    lock_path = target.with_name(target.name + ".lock")
    with open(lock_path, "a+", encoding="utf-8") as lock_handle:
        fcntl.flock(lock_handle.fileno(), fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(lock_handle.fileno(), fcntl.LOCK_UN)


# --------------------------------------------------------------------------- fingerprints
def pec_base_fingerprints(
    network: NetworkConfig,
    pecs: Sequence[PacketEquivalenceClass],
    dependency_graph: PecDependencyGraph,
) -> Dict[int, str]:
    """Per-PEC fingerprints of the config slices, composed over dependencies.

    A PEC's fingerprint folds in the slice fingerprints of every PEC in its
    dependency closure plus the closure's edge structure, so an edit that
    only touches an upstream PEC still invalidates all its dependents.
    """
    slices = {pec.index: _sha(config_slice(network, pec)) for pec in pecs}
    composed: Dict[int, str] = {}
    for pec in pecs:
        closure = dependency_closure(dependency_graph, [pec.index])
        upstream = sorted(closure - {pec.index})
        edges = tuple(
            sorted(
                (a, b)
                for a in closure
                for b in dependency_graph.dependencies_of(a)
                if b in closure
            )
        )
        composed[pec.index] = _sha(
            (
                slices[pec.index],
                tuple(slices.get(index, "?") for index in upstream),
                edges,
            )
        )
    return composed


def _policy_token(policies: Sequence) -> Tuple:
    """A canonical, process-stable serialisation of the policy list."""
    tokens: List[Tuple] = []
    for policy in policies:
        attributes = tuple(
            (name, repr(value)) for name, value in sorted(vars(policy).items())
        )
        tokens.append((type(policy).__module__, type(policy).__qualname__, attributes))
    return tuple(tokens)


def _options_token(options: PlanktonOptions) -> Tuple:
    """The option fields that can change results (execution knobs excluded).

    ``cores`` and ``backend`` are deliberately left out: the engine
    guarantees backend-identical results for the same task set, so a cached
    result is valid regardless of which backend produced it.
    """
    flags = options.optimizations
    return (
        options.max_failures,
        tuple(sorted(vars(flags).items())),
        options.stop_at_first_violation,
        options.max_states_per_pec,
        options.max_seconds_per_pec,
        options.fast_ospf,
        options.bitstate_bits,
        options.keep_data_planes,
    )


def _graph_shape(graph) -> Tuple[Dict[int, Tuple], bool]:
    """Per-PEC task shape of an expanded task graph (in task order)."""
    shape: Dict[int, List[Tuple]] = {}
    for task in graph.tasks:
        shape.setdefault(task.pec_index, []).append(
            (
                tuple(task.failure.failed_links),
                task.check_policies,
                task.collect_outcomes,
                task.kind,
            )
        )
    return {index: tuple(tasks) for index, tasks in shape.items()}, graph.has_edges


def verification_fingerprints(
    network: NetworkConfig,
    pecs: Sequence[PacketEquivalenceClass],
    dependency_graph: PecDependencyGraph,
    policies: Sequence,
    options: PlanktonOptions,
    graph,
) -> Dict[int, str]:
    """The cache keys of one verification request, per PEC index in ``graph``."""
    base = pec_base_fingerprints(network, pecs, dependency_graph)
    policy_token = _policy_token(policies)
    options_token = _options_token(options)
    shape, has_edges = _graph_shape(graph)
    return {
        index: _sha(("verify", base[index], policy_token, options_token, tasks, has_edges))
        for index, tasks in shape.items()
    }


def transient_fingerprint(
    base_fingerprint: str,
    transient_config,
    options: PlanktonOptions,
    task_shape: Tuple,
) -> str:
    """The cache key of one PEC's transient campaign.

    ``transient_config`` is a
    :class:`~repro.transient.explorer.TransientTaskConfig`; its properties,
    exploration options and initial events all shape the result.
    """
    properties = tuple(
        (
            type(prop).__module__,
            type(prop).__qualname__,
            tuple((name, repr(value)) for name, value in sorted(vars(prop).items())),
        )
        for prop in transient_config.properties
    )
    events = tuple(
        (
            type(event).__module__,
            type(event).__qualname__,
            tuple((name, repr(value)) for name, value in sorted(vars(event).items())),
        )
        for event in transient_config.initial_events
    )
    # Supervision knobs (task_timeout/task_retries) shape *how* a campaign
    # runs, never *what* it produces — excluded, like cores/backend.
    transient_options = tuple(
        sorted(
            (name, value)
            for name, value in vars(transient_config.options).items()
            if name not in ("task_timeout", "task_retries")
        )
    )
    return _sha(
        (
            "transient",
            base_fingerprint,
            properties,
            events,
            transient_options,
            _options_token(options),
            task_shape,
        )
    )


# --------------------------------------------------------------------------- JSON codecs
def encode_failure(failure: FailureScenario) -> List[int]:
    return list(failure.failed_links)


def decode_failure(payload: Iterable[int]) -> FailureScenario:
    return FailureScenario(tuple(payload))


def encode_trail(trail: Optional[Trail]) -> Optional[Dict]:
    if trail is None:
        return None
    return {
        "policy": trail.policy,
        "pec_description": trail.pec_description,
        "steps": [[step.kind, step.description] for step in trail.steps],
        "violation_description": trail.violation_description,
        "data_plane_dump": trail.data_plane_dump,
    }


def decode_trail(payload: Optional[Dict]) -> Optional[Trail]:
    if payload is None:
        return None
    return Trail(
        policy=payload["policy"],
        pec_description=payload["pec_description"],
        steps=[TrailStep(kind=kind, description=text) for kind, text in payload["steps"]],
        violation_description=payload["violation_description"],
        data_plane_dump=payload["data_plane_dump"],
    )


def encode_violation(violation: Violation) -> Dict:
    return {
        "policy": violation.policy,
        "pec_index": violation.pec_index,
        "pec_description": violation.pec_description,
        "failure_description": violation.failure_description,
        "message": violation.message,
        "trail": encode_trail(violation.trail),
    }


def decode_violation(payload: Dict) -> Violation:
    return Violation(
        policy=payload["policy"],
        pec_index=payload["pec_index"],
        pec_description=payload["pec_description"],
        failure_description=payload["failure_description"],
        message=payload["message"],
        trail=decode_trail(payload["trail"]),
    )


def encode_reduction(reduction: Optional[ReductionStatistics]) -> Optional[Dict]:
    if reduction is None:
        return None
    return {
        "mode": reduction.mode,
        "states_reduced": reduction.states_reduced,
        "states_full": reduction.states_full,
        "transitions_enabled": reduction.transitions_enabled,
        "transitions_expanded": reduction.transitions_expanded,
        "transitions_slept": reduction.transitions_slept,
        "sleep_requeues": reduction.sleep_requeues,
        "sleep_fallbacks": reduction.sleep_fallbacks,
        "proviso_fallbacks": reduction.proviso_fallbacks,
        "depth_pruned": reduction.depth_pruned,
        "rank_immune_sessions": reduction.rank_immune_sessions,
    }


def decode_reduction(payload: Optional[Dict]) -> Optional[ReductionStatistics]:
    if payload is None:
        return None
    return ReductionStatistics(**payload)


def encode_statistics(statistics: Optional[ExplorationStatistics]) -> Optional[Dict]:
    if statistics is None:
        return None
    return {
        "states_expanded": statistics.states_expanded,
        "unique_states": statistics.unique_states,
        "transitions": statistics.transitions,
        "terminal_states": statistics.terminal_states,
        "unique_terminal_states": statistics.unique_terminal_states,
        "violations": statistics.violations,
        "max_depth_reached": statistics.max_depth_reached,
        "elapsed_seconds": statistics.elapsed_seconds,
        "visited_bytes": statistics.visited_bytes,
        "interner_entries": statistics.interner_entries,
        "interner_bytes": statistics.interner_bytes,
        "state_bytes": statistics.state_bytes,
        "truncated": statistics.truncated,
        "reduction": encode_reduction(statistics.reduction),
    }


def decode_statistics(payload: Optional[Dict]) -> Optional[ExplorationStatistics]:
    if payload is None:
        return None
    payload = dict(payload)
    payload["reduction"] = decode_reduction(payload.get("reduction"))
    return ExplorationStatistics(**payload)


def encode_data_plane(plane: DataPlane) -> Dict:
    return {
        "devices": list(plane.fibs),
        "pec_range": (
            [plane.pec_range.low, plane.pec_range.high]
            if plane.pec_range is not None
            else None
        ),
        "annotations": {key: str(value) for key, value in plane.annotations.items()},
        "fibs": {
            device: [
                {
                    "prefix": str(entry.prefix),
                    "next_hops": list(entry.next_hops),
                    "source": entry.source.name,
                    "delivers_locally": entry.delivers_locally,
                    "drop": entry.drop,
                    "metric": entry.metric,
                }
                for entry in fib._entries.values()
            ]
            for device, fib in plane.fibs.items()
        },
    }


def decode_data_plane(payload: Dict) -> DataPlane:
    pec_range = (
        AddressRange(payload["pec_range"][0], payload["pec_range"][1])
        if payload["pec_range"] is not None
        else None
    )
    plane = DataPlane(payload["devices"], pec_range=pec_range)
    plane.annotations.update(payload["annotations"])
    for device, entries in payload["fibs"].items():
        fib = plane.fib(device)
        for entry in entries:
            # Bypass Fib.install: cached entries already won their
            # administrative-distance contest, and install order must be
            # reproduced exactly.
            decoded = FibEntry(
                prefix=Prefix(entry["prefix"]),
                next_hops=tuple(entry["next_hops"]),
                source=RouteSource[entry["source"]],
                delivers_locally=entry["delivers_locally"],
                drop=entry["drop"],
                metric=entry["metric"],
            )
            fib._entries[decoded.prefix] = decoded
    return plane


def encode_run(run: PecRunResult) -> Dict:
    return {
        "pec_index": run.pec_index,
        "failure": encode_failure(run.failure),
        "converged_states": run.converged_states,
        "checked_states": run.checked_states,
        "suppressed_states": run.suppressed_states,
        "violations": [encode_violation(violation) for violation in run.violations],
        "statistics": encode_statistics(run.statistics),
        "data_planes": [encode_data_plane(plane) for plane in run.data_planes],
    }


def decode_run(payload: Dict) -> PecRunResult:
    return PecRunResult(
        pec_index=payload["pec_index"],
        failure=decode_failure(payload["failure"]),
        converged_states=payload["converged_states"],
        checked_states=payload["checked_states"],
        suppressed_states=payload["suppressed_states"],
        violations=[decode_violation(entry) for entry in payload["violations"]],
        statistics=decode_statistics(payload["statistics"]),
        data_planes=[decode_data_plane(entry) for entry in payload["data_planes"]],
    )


# ------------------------------------------------------------------ transient codecs
def encode_transient_result(result) -> Dict:
    """Encode a :class:`~repro.transient.explorer.TransientAnalysisResult`.

    Results carrying converged RPVP states (``collect_converged=True``) are
    rejected by the service before reaching the cache; plain results are
    fully JSON-representable.
    """
    return {
        "states_explored": result.states_explored,
        "converged_states": result.converged_states,
        "max_depth_reached": result.max_depth_reached,
        "truncated": result.truncated,
        "elapsed_seconds": result.elapsed_seconds,
        "violations": [
            {
                "property_name": violation.property_name,
                "message": violation.message,
                "depth": violation.depth,
                "converged": violation.converged,
                "witness": list(violation.witness),
            }
            for violation in result.violations
        ],
        "reduction": encode_reduction(result.reduction),
    }


def decode_transient_result(payload: Dict):
    from repro.transient.explorer import TransientAnalysisResult, TransientViolation

    return TransientAnalysisResult(
        states_explored=payload["states_explored"],
        converged_states=payload["converged_states"],
        max_depth_reached=payload["max_depth_reached"],
        truncated=payload["truncated"],
        elapsed_seconds=payload["elapsed_seconds"],
        violations=[
            TransientViolation(
                property_name=entry["property_name"],
                message=entry["message"],
                depth=entry["depth"],
                converged=entry["converged"],
                witness=tuple(entry["witness"]),
            )
            for entry in payload["violations"]
        ],
        reduction=decode_reduction(payload["reduction"]),
    )


def encode_transient_run(run) -> Dict:
    """Encode a :class:`~repro.transient.explorer.TransientCampaignRun`."""
    encoded = {
        "pec_index": run.pec_index,
        "failure": encode_failure(run.failure),
        "prefix": run.prefix,
        "result": encode_transient_result(run.result),
    }
    if run.scenario is not None:
        encoded["scenario"] = run.scenario
    return encoded


def decode_transient_run(payload: Dict):
    from repro.transient.explorer import TransientCampaignRun

    return TransientCampaignRun(
        pec_index=payload["pec_index"],
        failure=decode_failure(payload["failure"]),
        prefix=payload["prefix"],
        result=decode_transient_result(payload["result"]),
        scenario=payload.get("scenario"),
    )


# --------------------------------------------------------------------------- the store
class ResultCache:
    """A fingerprint-keyed store of per-PEC results with a disk round trip.

    Entries are JSON-ready dicts (see the codec functions); the whole store
    serialises to one ``plankton_cache.json`` file inside ``directory``, so
    a service process can :meth:`save` on shutdown (or after every push)
    and restart warm.  Writes go through a temp-file rename so a crash
    mid-save never leaves a torn file.
    """

    FILENAME = "plankton_cache.json"

    def __init__(self, directory: Optional[PathLike] = None) -> None:
        self._entries: Dict[str, Dict] = {}
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.path: Optional[Path] = None
        if directory is not None:
            directory = Path(directory)
            directory.mkdir(parents=True, exist_ok=True)
            self.path = directory / self.FILENAME
            if self.path.exists():
                self.load(self.path)

    # ------------------------------------------------------------------ access
    def lookup(self, fingerprint: str) -> Optional[Dict]:
        """The entry stored under ``fingerprint``; counts the hit or miss."""
        entry = self._entries.get(fingerprint)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def contains(self, fingerprint: str) -> bool:
        """Presence test without touching the hit/miss counters."""
        return fingerprint in self._entries

    def store(self, fingerprint: str, entry: Dict) -> None:
        """Insert or replace the entry under ``fingerprint``."""
        self._entries[fingerprint] = entry
        self.stores += 1

    def invalidate(self, fingerprints: Iterable[str]) -> int:
        """Drop the named entries; returns how many existed."""
        dropped = 0
        for fingerprint in fingerprints:
            if self._entries.pop(fingerprint, None) is not None:
                dropped += 1
        return dropped

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def reset_counters(self) -> None:
        """Zero the hit/miss/store counters (per-run accounting)."""
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # ------------------------------------------------------------------ disk
    def save(self, path: Optional[PathLike] = None) -> Optional[Path]:
        """Write the store to ``path`` (default: the directory it was opened
        on); returns the file path, or None when the cache is memory-only.

        The document header (schema version, payload checksum) precedes the
        entries; the write is temp-file + atomic rename under the advisory
        lock, so a reader never sees a torn file and a second writer never
        interleaves.
        """
        target = Path(path) if path is not None else self.path
        if target is None:
            return None
        entries_json = json.dumps(self._entries, sort_keys=True)
        document = (
            '{"schema_version": %d, "checksum": "%s", "entries": %s}'
            % (CACHE_SCHEMA_VERSION, _entries_checksum(entries_json), entries_json)
        )
        target.parent.mkdir(parents=True, exist_ok=True)
        with _advisory_lock(target):
            handle = tempfile.NamedTemporaryFile(
                "w", dir=str(target.parent), suffix=".tmp", delete=False, encoding="utf-8"
            )
            try:
                with handle:
                    handle.write(document)
                    # Force the payload to stable storage before the rename:
                    # a crash (or SIGKILL) between replace and writeback must
                    # not leave the *new* name pointing at torn contents.
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(handle.name, target)
            except BaseException:
                try:
                    os.unlink(handle.name)
                except OSError:
                    pass
                raise
        return target

    def load(self, path: PathLike) -> int:
        """Replace the in-memory entries with the file's; returns the count.

        Unreadable, truncated, bit-flipped, checksum-mismatched and
        wrong-schema files all load as *empty* with a logged warning (a
        cache miss is always safe; a misread entry is not).  The read holds
        the same advisory lock as :meth:`save`, so a concurrent writer's
        rename is never observed mid-flight.
        """
        self._entries = {}
        target = Path(path)
        try:
            with _advisory_lock(target):
                with open(target, "r", encoding="utf-8") as handle:
                    document = json.load(handle)
        except (OSError, ValueError) as exc:
            LOG.warning(
                "cache: %s is unreadable (%s: %s); starting cold",
                target,
                type(exc).__name__,
                exc,
            )
            return 0
        version = document.get("schema_version") if isinstance(document, dict) else None
        if version != CACHE_SCHEMA_VERSION:
            LOG.warning(
                "cache: %s has schema version %r (this build reads %d); starting cold",
                target,
                version,
                CACHE_SCHEMA_VERSION,
            )
            return 0
        entries = document.get("entries")
        if not isinstance(entries, dict):
            LOG.warning("cache: %s has a malformed entries section; starting cold", target)
            return 0
        expected = document.get("checksum")
        actual = _entries_checksum(json.dumps(entries, sort_keys=True))
        if expected != actual:
            LOG.warning(
                "cache: %s failed its payload checksum (stored %s, computed %s); "
                "the file is corrupt — starting cold",
                target,
                (expected or "<missing>")[:16],
                actual[:16],
            )
            return 0
        self._entries = entries
        return len(self._entries)
