"""Incremental re-verification: verify once, re-verify config deltas fast.

A production verification service re-runs on every configuration push, and
:meth:`repro.core.verifier.Plankton.verify` recomputes every Packet
Equivalence Class from scratch even when a single route-map line changed.
This subsystem adds the control-plane counterpart of the dataplane-side
incremental verifier (:mod:`repro.dpverify`):

* :mod:`repro.incremental.delta` — structural diff of two
  :class:`~repro.config.objects.NetworkConfig`\\ s down to per-device
  constructs (links, BGP sessions, filters, static routes, announcements);
* :mod:`repro.incremental.impact` — per-PEC *config slices* (everything a
  PEC's verification result can read) and the delta → dirty-PEC mapping
  over the PEC trie and dependency graph;
* :mod:`repro.incremental.cache` — a persistent result store keyed by
  per-PEC fingerprints, with a JSON round trip to disk so a service
  process restarts warm;
* :mod:`repro.incremental.service` — the :class:`IncrementalVerifier`
  session API that owns a cache, computes deltas, and routes only dirty
  PECs through the execution engine, merging clean results from the cache.
"""

from repro.incremental.delta import ConfigDelta, diff_networks
from repro.incremental.impact import config_slice, impacted_pecs
from repro.incremental.cache import (
    ResultCache,
    pec_base_fingerprints,
    transient_fingerprint,
    verification_fingerprints,
)
from repro.incremental.service import (
    IncrementalRunStats,
    IncrementalVerifier,
    result_signature,
    result_signature_digest,
    transient_campaign_signature,
    transient_campaign_signature_digest,
)

__all__ = [
    "ConfigDelta",
    "diff_networks",
    "config_slice",
    "impacted_pecs",
    "ResultCache",
    "pec_base_fingerprints",
    "verification_fingerprints",
    "transient_fingerprint",
    "IncrementalRunStats",
    "IncrementalVerifier",
    "result_signature",
    "result_signature_digest",
    "transient_campaign_signature",
    "transient_campaign_signature_digest",
]
