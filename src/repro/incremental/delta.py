"""Structural diff of two network configurations (the *config delta*).

A configuration push changes a handful of constructs — a route-map clause, a
BGP session, a link weight — and the incremental re-verification service
needs to know *which* constructs changed to decide which Packet Equivalence
Classes must be recomputed.  :func:`diff_networks` compares two
:class:`~repro.config.objects.NetworkConfig`\\ s down to per-device
constructs and returns a :class:`ConfigDelta`:

* **topology** — links added/removed/reweighted, nodes added/removed,
  loopback changes (all of these can reroute any PEC, because shortest
  paths and failure-scenario enumeration read the whole graph);
* **sessions** — BGP sessions added/removed or with changed attributes
  (maps, next-hop-self, RR-client, weight), plus BGP process-level changes
  (ASN, default local-pref, multipath, redistribution);
* **filters** — route maps and prefix lists whose definition changed,
  with the prefixes their changed clauses can match (so the impact
  analysis can scope the damage to the PECs those prefixes cover);
* **static routes** and **announced prefixes** — added/removed/changed,
  keyed by the prefixes they cover.

The delta is *descriptive*: it names what changed and carries enough
prefix information for :mod:`repro.incremental.impact` to map the change
onto PECs.  Correctness of cache reuse never rests on the diff alone — the
per-PEC fingerprints of :mod:`repro.incremental.cache` re-derive the
config slice on every run — but the delta is what a service reports to
operators ("this push dirtied 2 of 96 PECs because route-map EXPORT_OWN on
edge0_0 changed").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.config.objects import (
    BgpConfig,
    DeviceConfig,
    NetworkConfig,
    OspfConfig,
    PrefixList,
    RouteMap,
)
from repro.netaddr import Prefix


@dataclass
class FilterChange:
    """One changed route map or prefix list on one device.

    ``match_prefixes`` lists the prefixes the changed clauses/entries can
    match; ``matches_everything`` is True when any changed clause has no
    prefix constraint (it can fire for any advertised prefix).
    """

    device: str
    kind: str  # "route-map" | "prefix-list"
    name: str
    match_prefixes: Tuple[Prefix, ...] = ()
    matches_everything: bool = False

    def describe(self) -> str:
        scope = (
            "any prefix"
            if self.matches_everything
            else ", ".join(str(p) for p in self.match_prefixes) or "no prefix"
        )
        return f"{self.device}: {self.kind} {self.name} (matches {scope})"


@dataclass
class ConfigDelta:
    """Everything that differs between two network configurations."""

    #: Links added/removed/reweighted, described as sorted endpoint pairs.
    link_changes: List[Tuple[str, str]] = field(default_factory=list)
    #: Devices added/removed or with a changed loopback.
    node_changes: List[str] = field(default_factory=list)
    #: BGP sessions added/removed/modified, as (device, peer) pairs.
    session_changes: List[Tuple[str, str]] = field(default_factory=list)
    #: BGP process-level changes (ASN, default local-pref, redistribution).
    bgp_process_changes: List[str] = field(default_factory=list)
    #: OSPF process/interface changes (costs, passive flags, redistribution).
    ospf_process_changes: List[str] = field(default_factory=list)
    #: Route maps / prefix lists whose definitions changed.
    filter_changes: List[FilterChange] = field(default_factory=list)
    #: Static routes added/removed/changed, as (device, prefix) pairs.
    static_changes: List[Tuple[str, Prefix]] = field(default_factory=list)
    #: Prefix announcements added/withdrawn, as (device, protocol, prefix).
    announce_changes: List[Tuple[str, str, Prefix]] = field(default_factory=list)

    @property
    def is_empty(self) -> bool:
        """True when the two configurations are structurally identical."""
        return not (
            self.link_changes
            or self.node_changes
            or self.session_changes
            or self.bgp_process_changes
            or self.ospf_process_changes
            or self.filter_changes
            or self.static_changes
            or self.announce_changes
        )

    @property
    def touches_topology(self) -> bool:
        """True when links or nodes changed (every PEC may be affected)."""
        return bool(self.link_changes or self.node_changes)

    def changed_devices(self) -> List[str]:
        """Sorted devices named by any change."""
        devices: Set[str] = set(self.node_changes)
        for a, b in self.link_changes:
            devices.update((a, b))
        for device, _peer in self.session_changes:
            devices.add(device)
        for entry in self.bgp_process_changes + self.ospf_process_changes:
            devices.add(entry.split(":", 1)[0])
        for change in self.filter_changes:
            devices.add(change.device)
        for device, _prefix in self.static_changes:
            devices.add(device)
        for device, _protocol, _prefix in self.announce_changes:
            devices.add(device)
        return sorted(devices)

    def summary(self) -> str:
        """One line naming the change counts (for reports and the CLI)."""
        if self.is_empty:
            return "no configuration changes"
        parts: List[str] = []
        for label, entries in (
            ("link", self.link_changes),
            ("node", self.node_changes),
            ("session", self.session_changes),
            ("bgp-process", self.bgp_process_changes),
            ("ospf-process", self.ospf_process_changes),
            ("filter", self.filter_changes),
            ("static-route", self.static_changes),
            ("announcement", self.announce_changes),
        ):
            if entries:
                parts.append(f"{len(entries)} {label} change(s)")
        return ", ".join(parts)

    def describe(self) -> str:
        """Multi-line human-readable delta."""
        if self.is_empty:
            return "no configuration changes"
        lines: List[str] = [self.summary()]
        for a, b in self.link_changes:
            lines.append(f"  link {a} -- {b}")
        for name in self.node_changes:
            lines.append(f"  node {name}")
        for device, peer in self.session_changes:
            lines.append(f"  session {device} -> {peer}")
        for entry in self.bgp_process_changes:
            lines.append(f"  bgp {entry}")
        for entry in self.ospf_process_changes:
            lines.append(f"  ospf {entry}")
        for change in self.filter_changes:
            lines.append(f"  filter {change.describe()}")
        for device, prefix in self.static_changes:
            lines.append(f"  static {device}: {prefix}")
        for device, protocol, prefix in self.announce_changes:
            lines.append(f"  announce {device}: {protocol} {prefix}")
        return "\n".join(lines)


# --------------------------------------------------------------------------- topology diff
def _link_key(link) -> Tuple[Tuple[str, str], int, int]:
    """A direction-normalised identity+weight key for one link."""
    if link.a <= link.b:
        return ((link.a, link.b), link.weight_ab, link.weight_ba)
    return ((link.b, link.a), link.weight_ba, link.weight_ab)


def _diff_topology(delta: ConfigDelta, old: NetworkConfig, new: NetworkConfig) -> None:
    old_nodes = {
        name: (old.topology.node(name).loopback, old.topology.node(name).role)
        for name in old.topology.nodes
    }
    new_nodes = {
        name: (new.topology.node(name).loopback, new.topology.node(name).role)
        for name in new.topology.nodes
    }
    for name in sorted(set(old_nodes) | set(new_nodes)):
        if old_nodes.get(name) != new_nodes.get(name):
            delta.node_changes.append(name)

    def link_multiset(topology) -> Dict[Tuple, int]:
        counts: Dict[Tuple, int] = {}
        for link in topology.links:
            key = _link_key(link)
            counts[key] = counts.get(key, 0) + 1
        return counts

    old_links = link_multiset(old.topology)
    new_links = link_multiset(new.topology)
    changed_pairs: Set[Tuple[str, str]] = set()
    for key in set(old_links) | set(new_links):
        if old_links.get(key, 0) != new_links.get(key, 0):
            changed_pairs.add(key[0])
    delta.link_changes.extend(sorted(changed_pairs))


# --------------------------------------------------------------------------- filter diff
def _route_map_signature(route_map: RouteMap) -> Tuple:
    return tuple(
        (
            clause.sequence,
            clause.permit,
            (
                clause.match.prefix_list,
                tuple(str(p) for p in clause.match.prefixes),
                tuple(clause.match.communities),
                clause.match.as_path_contains,
                clause.match.min_prefix_length,
                clause.match.max_prefix_length,
            ),
            (
                clause.actions.local_preference,
                clause.actions.med,
                clause.actions.prepend_count,
                tuple(clause.actions.add_communities),
                tuple(clause.actions.remove_communities),
                clause.actions.next_hop_self,
                clause.actions.ospf_metric,
            ),
        )
        for clause in route_map.sorted_clauses()
    )


def _prefix_list_signature(plist: PrefixList) -> Tuple:
    return tuple(
        (str(entry.prefix), entry.permit, entry.ge, entry.le) for entry in plist.entries
    )


def _clause_scope(clause, device: DeviceConfig) -> Tuple[Tuple[Prefix, ...], bool]:
    """The prefixes one route-map clause can match (or "everything")."""
    match = clause.match
    prefixes: List[Prefix] = list(match.prefixes)
    if match.prefix_list is not None:
        plist = device.prefix_lists.get(match.prefix_list)
        if plist is not None:
            prefixes.extend(entry.prefix for entry in plist.entries)
    if not prefixes:
        # No prefix constraint (pure community/length/AS-path or empty
        # match): the clause can fire for any advertised prefix.
        return (), True
    return tuple(prefixes), False


def _diff_filters(delta: ConfigDelta, name: str, old: DeviceConfig, new: DeviceConfig) -> None:
    for map_name in sorted(set(old.route_maps) | set(new.route_maps)):
        old_map = old.route_maps.get(map_name)
        new_map = new.route_maps.get(map_name)
        old_sig = _route_map_signature(old_map) if old_map is not None else None
        new_sig = _route_map_signature(new_map) if new_map is not None else None
        if old_sig == new_sig:
            continue
        prefixes: List[Prefix] = []
        everything = False
        # Scope the change to the clauses present on either side; a clause
        # present and identical on both sides cannot have changed behaviour.
        old_clauses = dict(zip(old_sig or (), (old_map.sorted_clauses() if old_map else ())))
        new_clauses = dict(zip(new_sig or (), (new_map.sorted_clauses() if new_map else ())))
        for signature, clause in list(old_clauses.items()) + list(new_clauses.items()):
            if signature in old_clauses and signature in new_clauses:
                continue
            owner = old if signature in old_clauses else new
            scope, matches_everything = _clause_scope(clause, owner)
            if matches_everything:
                everything = True
                break
            prefixes.extend(scope)
        delta.filter_changes.append(
            FilterChange(
                device=name,
                kind="route-map",
                name=map_name,
                match_prefixes=tuple(sorted(set(prefixes))) if not everything else (),
                matches_everything=everything,
            )
        )
    for list_name in sorted(set(old.prefix_lists) | set(new.prefix_lists)):
        old_list = old.prefix_lists.get(list_name)
        new_list = new.prefix_lists.get(list_name)
        old_sig = _prefix_list_signature(old_list) if old_list is not None else None
        new_sig = _prefix_list_signature(new_list) if new_list is not None else None
        if old_sig == new_sig:
            continue
        prefixes = [entry.prefix for entry in (old_list.entries if old_list else [])]
        prefixes += [entry.prefix for entry in (new_list.entries if new_list else [])]
        delta.filter_changes.append(
            FilterChange(
                device=name,
                kind="prefix-list",
                name=list_name,
                match_prefixes=tuple(sorted(set(prefixes))),
            )
        )


# --------------------------------------------------------------------------- bgp diff
def _session_signature(session) -> Tuple:
    return (
        session.remote_asn,
        session.import_map,
        session.export_map,
        session.next_hop_self,
        session.route_reflector_client,
        session.weight,
    )


def _diff_bgp(delta: ConfigDelta, name: str, old: Optional[BgpConfig], new: Optional[BgpConfig]) -> None:
    if old is None and new is None:
        return
    if (old is None) != (new is None):
        delta.bgp_process_changes.append(f"{name}: process {'added' if old is None else 'removed'}")
        present = new if new is not None else old
        for session in present.neighbors:
            delta.session_changes.append((name, session.peer))
        for prefix in present.networks:
            delta.announce_changes.append((name, "bgp", prefix))
        return
    process_fields = (
        ("asn", old.asn, new.asn),
        ("default_local_pref", old.default_local_pref, new.default_local_pref),
        ("redistribute_ospf", old.redistribute_ospf, new.redistribute_ospf),
        ("redistribute_static", old.redistribute_static, new.redistribute_static),
        ("multipath", old.multipath, new.multipath),
    )
    for field_name, old_value, new_value in process_fields:
        if old_value != new_value:
            delta.bgp_process_changes.append(f"{name}: {field_name} {old_value} -> {new_value}")
    old_sessions = {session.peer: _session_signature(session) for session in old.neighbors}
    new_sessions = {session.peer: _session_signature(session) for session in new.neighbors}
    for peer in sorted(set(old_sessions) | set(new_sessions)):
        if old_sessions.get(peer) != new_sessions.get(peer):
            delta.session_changes.append((name, peer))
    for prefix in sorted(set(old.networks) ^ set(new.networks)):
        delta.announce_changes.append((name, "bgp", prefix))


# --------------------------------------------------------------------------- ospf diff
def _ospf_signature(config: OspfConfig) -> Tuple:
    return (
        tuple(
            (neighbor, interface.cost, interface.passive)
            for neighbor, interface in sorted(config.interfaces.items())
        ),
        config.redistribute_static,
        config.external_metric,
    )


def _diff_ospf(delta: ConfigDelta, name: str, old: Optional[OspfConfig], new: Optional[OspfConfig]) -> None:
    if old is None and new is None:
        return
    if (old is None) != (new is None):
        delta.ospf_process_changes.append(f"{name}: process {'added' if old is None else 'removed'}")
        present = new if new is not None else old
        for prefix in present.networks:
            delta.announce_changes.append((name, "ospf", prefix))
        return
    if _ospf_signature(old) != _ospf_signature(new):
        delta.ospf_process_changes.append(f"{name}: process settings changed")
    for prefix in sorted(set(old.networks) ^ set(new.networks)):
        delta.announce_changes.append((name, "ospf", prefix))


# --------------------------------------------------------------------------- static diff
def _static_signature(route) -> Tuple:
    return (
        str(route.prefix),
        route.next_hop_node,
        str(route.next_hop_ip) if route.next_hop_ip is not None else None,
        route.distance,
        route.drop,
    )


def _diff_static(delta: ConfigDelta, name: str, old: DeviceConfig, new: DeviceConfig) -> None:
    def multiset(device: DeviceConfig) -> Dict[Tuple, int]:
        counts: Dict[Tuple, int] = {}
        for route in device.static_routes:
            key = _static_signature(route)
            counts[key] = counts.get(key, 0) + 1
        return counts

    old_routes = multiset(old)
    new_routes = multiset(new)
    changed: Set[Prefix] = set()
    for key in set(old_routes) | set(new_routes):
        if old_routes.get(key, 0) != new_routes.get(key, 0):
            changed.add(Prefix(key[0]))
    for prefix in sorted(changed):
        delta.static_changes.append((name, prefix))


# --------------------------------------------------------------------------- entry point
def diff_networks(old: NetworkConfig, new: NetworkConfig) -> ConfigDelta:
    """The structural delta between two network configurations."""
    delta = ConfigDelta()
    _diff_topology(delta, old, new)
    empty = DeviceConfig(name="")
    for name in sorted(set(old.devices) | set(new.devices)):
        old_device = old.devices.get(name, empty)
        new_device = new.devices.get(name, empty)
        _diff_filters(delta, name, old_device, new_device)
        _diff_bgp(delta, name, old_device.bgp, new_device.bgp)
        _diff_ospf(delta, name, old_device.ospf, new_device.ospf)
        _diff_static(delta, name, old_device, new_device)
    return delta
