"""PEC impact analysis: which PECs can a config delta affect?

Two complementary views of the same question live here:

* :func:`config_slice` — the *forward* view: for one PEC, the canonical
  serialisation of every construct its verification result can read.  This
  is what the per-PEC fingerprints of :mod:`repro.incremental.cache` hash:
  if the slice (plus the policy, the options, the task shape and the
  slices of dependency PECs) is unchanged, the PEC's result is unchanged.
  PRAXIS-style attribution works the same way in reverse: the slice names
  the constructs a PEC's outcome is attributable to.
* :func:`impacted_pecs` — the *backward* view: map a
  :class:`~repro.incremental.delta.ConfigDelta` onto the set of dirty PEC
  indices using the PEC partition and the dependency graph.  A changed
  filter dirties the PECs whose prefix ranges its changed clauses can
  match, a changed link or session dirties every PEC whose exploration
  can traverse it, and the result is closed transitively over the PEC
  dependency edges (a dirty upstream dirties every dependent).

The backward view is intentionally an over-approximation of "slice
changed": the service uses it to invalidate proactively and to explain a
push, while cache *hits* are always gated on fingerprint equality, so an
impact-analysis bug can cost recomputation but never staleness.

What goes into a slice (and why):

* the **whole topology** — OSPF shortest paths, failure-scenario
  enumeration and Link-Equivalence-Class reduction read every link;
* **OSPF settings of every device** (interface costs, passive flags,
  redistribution) plus the device's OSPF networks restricted to the PEC —
  costs shape the IGP for every destination, but an OSPF ``network``
  statement for a prefix outside the PEC cannot influence it;
* **BGP process + sessions of every device** — any session can carry the
  PEC's advertisements — plus BGP networks restricted to the PEC;
* **route maps referenced by sessions**, restricted per PEC prefix to the
  clauses that *can match* it (prefix/length conditions are evaluated
  exactly; community/AS-path conditions are conservatively treated as
  matchable), in sequence order — a clause that cannot match any of the
  PEC's prefixes can never fire for them under first-match evaluation;
* the per-device **maximum assignable local preference** over *all* route
  maps (referenced or not) — the §4.1.2 deterministic-node bounds read it
  (:func:`repro.protocols.filters.maximum_local_pref`), so an edit to an
  otherwise-unreferenced map can still change exploration statistics;
* **static routes** covering the PEC (with distance/drop/next hops).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

from repro.config.objects import DeviceConfig, NetworkConfig, RouteMapClause
from repro.incremental.delta import ConfigDelta
from repro.netaddr import Prefix
from repro.pec.classes import PacketEquivalenceClass, pec_covering_prefix
from repro.pec.dependencies import PecDependencyGraph
from repro.protocols.filters import maximum_local_pref


# --------------------------------------------------------------------------- clause scoping
def _clause_can_match(clause: RouteMapClause, device: DeviceConfig, prefix: Prefix) -> bool:
    """Whether ``clause`` can ever match a route advertised for ``prefix``.

    Mirrors :func:`repro.protocols.filters._clause_matches` for the
    route-independent conditions (prefix list, prefix set, length bounds)
    and treats route-dependent conditions (communities, AS path) as
    potentially true.
    """
    match = clause.match
    if match.is_empty():
        return True
    if match.prefix_list is not None:
        plist = device.prefix_lists.get(match.prefix_list)
        if plist is not None and not plist.permits(prefix):
            return False
    if match.prefixes and not any(p.contains_prefix(prefix) for p in match.prefixes):
        return False
    if match.min_prefix_length is not None and prefix.length < match.min_prefix_length:
        return False
    if match.max_prefix_length is not None and prefix.length > match.max_prefix_length:
        return False
    return True


def _clause_token(clause: RouteMapClause) -> Tuple:
    return (
        clause.sequence,
        clause.permit,
        clause.match.prefix_list,
        tuple(sorted(str(p) for p in clause.match.prefixes)),
        tuple(sorted(clause.match.communities)),
        clause.match.as_path_contains,
        clause.match.min_prefix_length,
        clause.match.max_prefix_length,
        clause.actions.local_preference,
        clause.actions.med,
        clause.actions.prepend_count,
        tuple(sorted(clause.actions.add_communities)),
        tuple(sorted(clause.actions.remove_communities)),
        clause.actions.next_hop_self,
        clause.actions.ospf_metric,
    )


def _route_map_slice(
    device: DeviceConfig, map_name: Optional[str], prefixes: Sequence[Prefix]
) -> Tuple:
    """The per-PEC view of one referenced route map: can-match clauses only.

    Each kept clause carries its *per-prefix* route-independent match
    vector, not just its definition: runtime evaluation gates on
    ``prefix_list.permits(advertised)`` and the prefix/length conditions
    per advertised prefix, so an edit that flips matchability for one of
    the PEC's prefixes (e.g. a ``le`` bound change in a referenced prefix
    list) must change the slice even when the clause body and its
    any-prefix matchability are unchanged.
    """
    if map_name is None:
        return ("none",)
    route_map = device.route_maps.get(map_name)
    if route_map is None:
        return ("missing", map_name)
    tokens: List[Tuple] = []
    for clause in route_map.sorted_clauses():
        match_vector = tuple(
            _clause_can_match(clause, device, prefix) for prefix in prefixes
        )
        if any(match_vector):
            tokens.append((match_vector, _clause_token(clause)))
    return (map_name, tuple(tokens))


# --------------------------------------------------------------------------- topology token
def _topology_token(network: NetworkConfig) -> Tuple:
    """Everything the verifier reads from the topology, in iteration order.

    Node order matters (it fixes protocol-instance slot layouts and hence
    exploration order), so it is serialised as-is rather than sorted.
    """
    topology = network.topology
    nodes = tuple(
        (
            name,
            topology.node(name).role,
            str(topology.node(name).loopback) if topology.node(name).loopback else None,
        )
        for name in topology.nodes
    )
    links = tuple(
        (link.link_id, link.a, link.b, link.weight_ab, link.weight_ba)
        for link in topology.links
    )
    return (nodes, links)


# --------------------------------------------------------------------------- device slices
def _device_slice(device: DeviceConfig, pec: PacketEquivalenceClass) -> Optional[Tuple]:
    """One device's contribution to the PEC's slice (None when empty)."""
    pec_prefixes = pec.prefixes
    parts: List[Tuple] = []

    statics = tuple(
        (
            str(route.prefix),
            route.next_hop_node,
            str(route.next_hop_ip) if route.next_hop_ip is not None else None,
            route.distance,
            route.drop,
        )
        for route in device.static_routes
        if pec.address_range.overlaps(route.prefix.to_range())
    )
    if statics:
        parts.append(("static", statics))

    if device.ospf is not None:
        ospf = device.ospf
        networks = tuple(
            sorted(
                str(prefix)
                for prefix in ospf.networks
                if pec.address_range.overlaps(prefix.to_range())
            )
        )
        interfaces = tuple(
            (neighbor, interface.cost, interface.passive)
            for neighbor, interface in sorted(ospf.interfaces.items())
        )
        parts.append(
            (
                "ospf",
                networks,
                interfaces,
                ospf.redistribute_static,
                ospf.external_metric,
            )
        )

    if device.bgp is not None:
        bgp = device.bgp
        networks = tuple(
            sorted(
                str(prefix)
                for prefix in bgp.networks
                if pec.address_range.overlaps(prefix.to_range())
            )
        )
        sessions: List[Tuple] = []
        for session in sorted(bgp.neighbors, key=lambda s: s.peer):
            sessions.append(
                (
                    session.peer,
                    session.remote_asn,
                    session.next_hop_self,
                    session.route_reflector_client,
                    session.weight,
                    _route_map_slice(device, session.import_map, pec_prefixes),
                    _route_map_slice(device, session.export_map, pec_prefixes),
                )
            )
        parts.append(
            (
                "bgp",
                bgp.asn,
                bgp.default_local_pref,
                bgp.redistribute_ospf,
                bgp.redistribute_static,
                bgp.multipath,
                networks,
                tuple(sessions),
                # The §4.1.2 bounds read the max local-pref over *all* maps.
                maximum_local_pref(device, bgp.default_local_pref),
            )
        )

    if not parts:
        return None
    return tuple(parts)


def config_slice(network: NetworkConfig, pec: PacketEquivalenceClass) -> Tuple:
    """The canonical serialisation of everything ``pec``'s result can read.

    Dependency PECs are *not* folded in here — the fingerprint layer
    composes slices along the dependency closure — so the slice of a PEC
    changes only when a construct it directly reads changes.
    """
    devices = tuple(
        (name, slice_)
        for name in network.topology.nodes
        for slice_ in (_device_slice(network.devices.get(name, DeviceConfig(name=name)), pec),)
        if slice_ is not None
    )
    return (
        pec.index,
        (pec.address_range.low, pec.address_range.high),
        tuple(str(prefix) for prefix in pec.prefixes),
        tuple((str(prefix), devices_) for prefix, devices_ in pec.ospf_origins),
        tuple((str(prefix), devices_) for prefix, devices_ in pec.bgp_origins),
        tuple((str(prefix), devices_) for prefix, devices_ in pec.static_devices),
        _topology_token(network),
        devices,
    )


# --------------------------------------------------------------------------- delta -> dirty PECs
def impacted_pecs(
    delta: ConfigDelta,
    network: NetworkConfig,
    pecs: Sequence[PacketEquivalenceClass],
    dependency_graph: PecDependencyGraph,
) -> Set[int]:
    """The indices of PECs (in the *new* partition) the delta can affect.

    The mapping follows the slice structure: topology changes dirty every
    PEC; session and BGP-process changes dirty every BGP-bearing PEC;
    filter changes dirty the PECs whose prefix ranges the changed clauses
    can match (or every BGP PEC for unconstrained clauses); static and
    announcement changes dirty the PECs covering their prefixes.  The
    result is closed over the dependency graph's *dependent* edges.
    """
    if delta.is_empty:
        return set()
    dirty: Set[int] = set()
    all_indices = {pec.index for pec in pecs}

    if delta.touches_topology:
        return set(all_indices)

    def pecs_for(prefix: Prefix) -> List[PacketEquivalenceClass]:
        return pec_covering_prefix(pecs, prefix)

    bgp_pecs = {pec.index for pec in pecs if pec.has_bgp()}

    if delta.session_changes or delta.bgp_process_changes:
        dirty.update(bgp_pecs)

    if delta.ospf_process_changes:
        # Interface costs and redistribution shape the IGP for every
        # destination; OSPF process changes therefore dirty every PEC that
        # uses OSPF or consumes IGP costs (conservatively: all of them).
        dirty.update(all_indices)

    for change in delta.filter_changes:
        if change.matches_everything:
            dirty.update(bgp_pecs)
            continue
        for prefix in change.match_prefixes:
            dirty.update(pec.index for pec in pecs_for(prefix))

    for _device, prefix in delta.static_changes:
        dirty.update(pec.index for pec in pecs_for(prefix))

    for _device, _protocol, prefix in delta.announce_changes:
        dirty.update(pec.index for pec in pecs_for(prefix))

    # Transitive closure over dependents: a dirty upstream invalidates the
    # merged outcomes every dependent explored against.
    frontier = list(dirty)
    while frontier:
        index = frontier.pop()
        for dependent in dependency_graph.dependents_of(index):
            if dependent not in dirty:
                dirty.add(dependent)
                frontier.append(dependent)
    return dirty & all_indices
