"""The incremental re-verification session: :class:`IncrementalVerifier`.

A service process owns one :class:`IncrementalVerifier`.  The first
:meth:`~IncrementalVerifier.verify` call behaves like a cold
:meth:`~repro.core.verifier.Plankton.verify` and fills the cache; every
configuration push then goes through :meth:`~IncrementalVerifier.update`
(which computes the :class:`~repro.incremental.delta.ConfigDelta` and the
impacted-PEC set) and a re-:meth:`verify` that

1. expands the *same* task graph a cold run would,
2. fingerprints every PEC in the graph
   (:func:`~repro.incremental.cache.verification_fingerprints`),
3. serves clean PECs from the cache and routes only the dirty ones through
   the execution engine (the task graph filtered to dirty tasks, cached
   upstream data planes injected for dependency edges), and
4. merges everything **in task-graph order** with the cold run's
   stop-at-first-violation semantics, so the produced
   :class:`~repro.core.results.VerificationResult` is identical (modulo
   wall-clock fields) to what a cold verify of the new configuration would
   return.

Transient (SPVP interleaving) campaigns go through
:meth:`~IncrementalVerifier.verify_transients` with the same
fingerprint-gated reuse, one cache entry per (PEC, transient payload).

Correctness layering: a cache entry is used only when its fingerprint
matches, *and* the PECs named dirty by the impact analysis of the latest
:meth:`update` are recomputed regardless — so the impact analysis can only
cost extra recomputation, never staleness, and a fingerprint bug would have
to coincide with an impact-analysis miss to go unnoticed.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.config.objects import NetworkConfig
from repro.core.options import PlanktonOptions
from repro.core.results import VerificationResult
from repro.core.verifier import Plankton
from repro.incremental.cache import (
    ResultCache,
    decode_data_plane,
    decode_run,
    decode_transient_run,
    encode_data_plane,
    encode_failure,
    encode_run,
    encode_transient_run,
    pec_base_fingerprints,
    transient_fingerprint,
    verification_fingerprints,
)
from repro.incremental.delta import ConfigDelta, diff_networks
from repro.incremental.impact import impacted_pecs
from repro.pec.classes import PacketEquivalenceClass
from repro.policies.base import Policy


# --------------------------------------------------------------------------- run stats
@dataclass
class IncrementalRunStats:
    """Cache-hit / recompute accounting for one incremental run."""

    pecs_total: int = 0
    pecs_from_cache: int = 0
    pecs_recomputed: int = 0
    tasks_total: int = 0
    tasks_from_cache: int = 0
    tasks_recomputed: int = 0
    #: PEC indices recomputed this run (fingerprint miss or impact-dirty).
    dirty_pecs: List[int] = field(default_factory=list)
    #: PEC indices the impact analysis of the last delta named.
    impacted_pecs: List[int] = field(default_factory=list)
    delta_summary: str = ""
    cache_entries: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "pecs_total": self.pecs_total,
            "pecs_from_cache": self.pecs_from_cache,
            "pecs_recomputed": self.pecs_recomputed,
            "tasks_total": self.tasks_total,
            "tasks_from_cache": self.tasks_from_cache,
            "tasks_recomputed": self.tasks_recomputed,
            "dirty_pecs": list(self.dirty_pecs),
            "impacted_pecs": list(self.impacted_pecs),
            "delta_summary": self.delta_summary,
            "cache_entries": self.cache_entries,
        }

    def describe(self) -> str:
        delta = f" ({self.delta_summary})" if self.delta_summary else ""
        return (
            f"incremental: {self.pecs_from_cache}/{self.pecs_total} PEC(s) from "
            f"cache, {self.pecs_recomputed} recomputed "
            f"({self.tasks_from_cache}/{self.tasks_total} task(s) cached); "
            f"{self.cache_entries} cache entr(ies){delta}"
        )


# --------------------------------------------------------------------------- engine glue
class _CacheAwareAggregator:
    """Engine aggregator for the dirty-task subgraph.

    Implements the surface the backends drive; upstream data planes combine
    the dirty results produced so far with the cached planes of clean
    upstream PECs (injected per task at construction).
    """

    def __init__(self, options, cached_planes: Dict[int, Dict[int, List]], spec_by_id) -> None:
        self._options = options
        self._cached_planes = cached_planes
        self._spec_by_id = spec_by_id
        self.results: Dict[int, object] = {}
        self.failures: Dict[int, object] = {}  # task id -> TaskFailure
        self.stop_requested = False

    def record(self, result) -> None:
        self.results[result.task_id] = result
        if result.has_violation and self._options.stop_at_first_violation:
            self.stop_requested = True

    def record_failure(self, spec, error, attempts: int) -> None:
        from repro.engine.supervision import task_failure_from

        self.failures[spec.task_id] = task_failure_from(spec, error, attempts)

    @property
    def failed_tasks(self) -> Set[int]:
        return set(self.failures)

    def upstream_planes(self, spec) -> Dict[int, List]:
        planes: Dict[int, List] = {}
        for pec_index, cached in self._cached_planes.get(spec.task_id, {}).items():
            planes.setdefault(pec_index, []).extend(cached)
        for dependency_id in spec.depends_on:
            upstream = self._spec_by_id[dependency_id]
            result = self.results.get(dependency_id)
            planes.setdefault(upstream.pec_index, []).extend(
                result.data_planes if result is not None else []
            )
        return planes

    def has_result(self, task_id: int) -> bool:
        return task_id in self.results or task_id in self.failures


# --------------------------------------------------------------------------- signatures
def _reduction_signature(reduction) -> Optional[Tuple]:
    if reduction is None:
        return None
    return (
        reduction.mode,
        reduction.states_reduced,
        reduction.states_full,
        reduction.transitions_enabled,
        reduction.transitions_expanded,
        reduction.transitions_slept,
        reduction.sleep_requeues,
        reduction.sleep_fallbacks,
        reduction.proviso_fallbacks,
        reduction.depth_pruned,
    )


def _statistics_signature(statistics) -> Optional[Tuple]:
    if statistics is None:
        return None
    return (
        statistics.states_expanded,
        statistics.unique_states,
        statistics.transitions,
        statistics.terminal_states,
        statistics.unique_terminal_states,
        statistics.violations,
        statistics.max_depth_reached,
        statistics.visited_bytes,
        statistics.interner_entries,
        statistics.interner_bytes,
        statistics.truncated,
        _reduction_signature(statistics.reduction),
    )


def _trail_signature(trail) -> Optional[Tuple]:
    if trail is None:
        return None
    return (
        trail.policy,
        trail.pec_description,
        tuple((step.kind, step.description) for step in trail.steps),
        trail.violation_description,
        trail.data_plane_dump,
    )


def _violation_signature(violation) -> Tuple:
    return (
        violation.policy,
        violation.pec_index,
        violation.pec_description,
        violation.failure_description,
        violation.message,
        _trail_signature(violation.trail),
    )


def _run_signature(run) -> Tuple:
    return (
        run.pec_index,
        tuple(run.failure.failed_links),
        run.converged_states,
        run.checked_states,
        run.suppressed_states,
        tuple(_violation_signature(violation) for violation in run.violations),
        _statistics_signature(run.statistics),
        tuple(plane.describe() for plane in run.data_planes),
    )


def result_signature(result: VerificationResult) -> Tuple:
    """Everything observable about a verification result except wall-clock.

    The incremental oracle tests assert this is bit-identical between an
    incremental re-verification and a cold ``Plankton.verify``.
    """
    return (
        tuple(result.policy_names),
        result.holds,
        result.pecs_analyzed,
        result.failure_scenarios,
        result.total_states_expanded,
        result.total_unique_states,
        result.total_converged_states,
        result.approximate_memory_bytes,
        tuple(_violation_signature(violation) for violation in result.violations),
        tuple(_run_signature(run) for run in result.pec_runs),
        tuple(
            (f.task_id, f.pec_index, f.failure_description, f.kind, f.task_kind)
            for f in result.errors
        ),
    )


def result_signature_digest(result: VerificationResult) -> str:
    """A process-stable hex digest of :func:`result_signature`.

    The signature tuple itself contains live objects; the digest travels
    over the service API so a client (or test) can assert bit-identity with
    an in-process cold verify without shipping the objects.
    """
    import hashlib

    return hashlib.sha256(repr(result_signature(result)).encode("utf-8")).hexdigest()


def transient_campaign_signature(campaign) -> Tuple:
    """Wall-clock-free signature of a transient campaign (oracle tests)."""
    return (
        campaign.failure_scenarios,
        tuple(
            (
                run.pec_index,
                tuple(run.failure.failed_links),
                run.prefix,
                run.result.stats_signature(),
                _reduction_signature(run.result.reduction),
            )
            for run in campaign.runs
        ),
    )


def transient_campaign_signature_digest(campaign) -> str:
    """Hex digest of :func:`transient_campaign_signature` (service API)."""
    import hashlib

    return hashlib.sha256(
        repr(transient_campaign_signature(campaign)).encode("utf-8")
    ).hexdigest()


# --------------------------------------------------------------------------- the service
class IncrementalVerifier:
    """A verification session that re-verifies configuration deltas fast.

    Typical service loop::

        service = IncrementalVerifier(network, options, cache_dir="cache/")
        service.verify(policy)              # cold; fills the cache
        delta = service.update(new_network) # a config push
        result = service.verify(policy)     # only dirty PECs recomputed
        print(result.incremental.describe())

    The cache directory is optional; without it the cache lives in memory
    for the life of the session.  With it, every verify persists the store,
    so a *new process* pointed at the same directory restarts warm.
    """

    def __init__(
        self,
        network: NetworkConfig,
        options: Optional[PlanktonOptions] = None,
        cache_dir=None,
        cache: Optional[ResultCache] = None,
    ) -> None:
        self.options = options or PlanktonOptions()
        self.cache = cache if cache is not None else ResultCache(cache_dir)
        self.plankton = Plankton(network, self.options)
        self.last_delta: Optional[ConfigDelta] = None
        #: Impact-dirty PEC indices, consumed once per result kind: the
        #: first verify (and the first transient campaign) after an update
        #: recomputes them regardless of fingerprint agreement.
        self._impact_pending: Dict[str, Set[int]] = {"verify": set(), "transient": set()}

    # ------------------------------------------------------------------ session API
    @property
    def network(self) -> NetworkConfig:
        return self.plankton.network

    def update(self, new_network: NetworkConfig) -> ConfigDelta:
        """Install a new configuration; returns the structural delta.

        The delta's impacted PECs are recomputed (not served from cache) on
        the next verify even if their fingerprints match — the impact
        analysis acts as a second, independent invalidation layer.
        """
        delta = diff_networks(self.plankton.network, new_network)
        self.plankton = Plankton(new_network, self.options)
        self.last_delta = delta
        impacted = impacted_pecs(
            delta, new_network, self.plankton.pecs, self.plankton.dependency_graph
        )
        # Union, not replace: consecutive pushes without an intervening
        # verify must keep every earlier push's PECs pending.  (Indices are
        # in the *new* partition; fingerprints cover partition shifts, the
        # pending set is the independent belt on top.)
        self._impact_pending["verify"] |= impacted
        self._impact_pending["transient"] |= impacted
        return delta

    def save(self):
        """Persist the cache (no-op for memory-only caches)."""
        return self.cache.save()

    def with_options(self, options: PlanktonOptions) -> "IncrementalVerifier":
        """A session over the same network with different engine options.

        The warm state survives: the cache object (and its disk binding),
        the last delta and the pending impact-dirty PEC sets all carry over;
        only the :class:`Plankton` facade is rebuilt, since its task
        expansion depends on the options.  Used by the serve daemon when a
        tenant's push changes options mid-session — result correctness is
        carried by the fingerprints (which cover the result-shaping option
        fields), so reusing the cache across an options change is safe: a
        result-shaping change misses, an execution-only change hits.
        """
        fresh = IncrementalVerifier(self.network, options, cache=self.cache)
        fresh.last_delta = self.last_delta
        fresh._impact_pending = {
            kind: set(indices) for kind, indices in self._impact_pending.items()
        }
        return fresh

    # ------------------------------------------------------------------ verification
    def verify(self, policies: Union[Policy, Sequence[Policy]]) -> VerificationResult:
        """Verify the current configuration, reusing every clean PEC.

        The returned result is identical (except wall-clock fields) to a
        cold ``Plankton(network, options).verify(policies)`` of the same
        configuration; ``result.incremental`` carries the cache accounting.
        """
        from repro.engine import EngineContext, select_backend
        from repro.engine.graph import TaskResult
        from repro.engine.worker import execute_task

        plankton = self.plankton
        self.cache.reset_counters()
        impact_dirty = self._impact_pending["verify"]
        started = time.perf_counter()
        policy_list, relevant, graph = plankton.expand_request(policies)
        result = VerificationResult(policy_names=[p.name for p in policy_list])
        stats = IncrementalRunStats(
            impacted_pecs=sorted(impact_dirty),
            delta_summary=self.last_delta.summary() if self.last_delta else "",
        )
        result.incremental = stats
        result.pecs_analyzed = len(relevant)
        if not relevant:
            stats.cache_entries = len(self.cache)
            result.elapsed_seconds = time.perf_counter() - started
            return result
        result.failure_scenarios = graph.failure_scenarios
        fingerprints = verification_fingerprints(
            plankton.network,
            plankton.pecs,
            plankton.dependency_graph,
            policy_list,
            self.options,
            graph,
        )

        tasks_by_pec: Dict[int, List] = {}
        for task in graph.tasks:
            tasks_by_pec.setdefault(task.pec_index, []).append(task)
        stats.pecs_total = len(tasks_by_pec)
        stats.tasks_total = len(graph.tasks)

        # ---------------------------------------------------------- cache triage
        cached_results: Dict[int, TaskResult] = {}  # original task id -> result
        dirty: Set[int] = set()
        for pec_index, tasks in tasks_by_pec.items():
            entry = None
            if pec_index not in impact_dirty:
                entry = self.cache.lookup(fingerprints[pec_index])
            if entry is not None:
                decoded = self._decode_verify_entry(entry, tasks)
                if decoded is not None:
                    cached_results.update(decoded)
                    stats.pecs_from_cache += 1
                    stats.tasks_from_cache += len(tasks)
                    continue
            dirty.add(pec_index)
            stats.pecs_recomputed += 1
        stats.dirty_pecs = sorted(dirty)

        # ---------------------------------------------------------- dirty subgraph
        spec_by_id = {task.task_id: task for task in graph.tasks}
        # Early-stop parity with a cold run: a violation sitting in a
        # *cached* task stops the ordered merge there, so dirty tasks after
        # it would be computed only to be discarded.  Trim them up front
        # (they stay dirty/uncached for the next verify — exactly what a
        # cold run would have left behind).
        stop_boundary: Optional[int] = None
        if self.options.stop_at_first_violation:
            for task in graph.tasks:
                cached = cached_results.get(task.task_id)
                if cached is not None and cached.has_violation:
                    stop_boundary = task.task_id
                    break
        dirty_task_ids = [
            task.task_id
            for task in graph.tasks
            if task.pec_index in dirty
            and (stop_boundary is None or task.task_id < stop_boundary)
        ]
        stats.tasks_recomputed = len(dirty_task_ids)

        if dirty_task_ids:
            filtered, id_map = graph.restricted(dirty_task_ids)
            # Dependency edges into clean tasks were dropped by the
            # restriction; inject their cached data planes per dirty task.
            cached_planes: Dict[int, Dict[int, List]] = {}
            for task in graph.tasks:
                if task.task_id not in id_map:
                    continue
                clean_upstream: Dict[int, List] = {}
                for dependency_id in task.depends_on:
                    upstream = spec_by_id[dependency_id]
                    if upstream.pec_index in dirty:
                        continue
                    cached = cached_results.get(dependency_id)
                    clean_upstream.setdefault(upstream.pec_index, []).extend(
                        cached.data_planes if cached is not None else []
                    )
                if clean_upstream:
                    cached_planes[id_map[task.task_id]] = clean_upstream

            filtered_spec_by_id = {task.task_id: task for task in filtered.tasks}
            aggregator = _CacheAwareAggregator(
                self.options, cached_planes, filtered_spec_by_id
            )
            backend = select_backend(self.options, filtered)
            if cached_planes and backend.name == "process":
                # The process backend ships upstream planes only for tasks
                # with dependency edges; tasks whose upstreams are all
                # cached have none, so their injected planes would never
                # reach a worker.  Dependent graphs are the rare case —
                # run the dirty subgraph serially there.
                from repro.engine.backends import SerialBackend

                backend = SerialBackend()
            backend.execute(
                filtered,
                EngineContext(plankton=plankton, policies=policy_list),
                aggregator,
            )
            dirty_results = {
                original: aggregator.results[new_id]
                for original, new_id in id_map.items()
                if new_id in aggregator.results
                and not aggregator.results[new_id].cancelled
            }
            # Exhausted tasks (supervision layer): carry the structured
            # failures over with their *original* task ids; the merge loop
            # records them into the result's errors section instead of
            # silently recomputing them in-process.
            failed_results = {
                original: dataclasses.replace(
                    aggregator.failures[new_id], task_id=original
                )
                for original, new_id in id_map.items()
                if new_id in aggregator.failures
            }
        else:
            dirty_results = {}
            failed_results = {}

        # ---------------------------------------------------------- ordered merge
        # Walk the full graph in task order, exactly like a cold serial run:
        # merge each task's result and stop at the first violating task.  A
        # dirty task the engine cancelled before the stop point (possible
        # with the process backend's racy early stop) is recomputed on
        # demand so the merged prefix is always complete.
        final_results: Dict[int, TaskResult] = {}
        for task in graph.tasks:
            failure = failed_results.get(task.task_id)
            if failure is not None:
                result.errors.append(failure)
                continue
            task_result = cached_results.get(task.task_id)
            if task_result is None:
                task_result = dirty_results.get(task.task_id)
            if task_result is None:
                upstream: Dict[int, List] = {}
                for dependency_id in task.depends_on:
                    upstream_spec = spec_by_id[dependency_id]
                    produced = final_results.get(dependency_id)
                    upstream.setdefault(upstream_spec.pec_index, []).extend(
                        produced.data_planes if produced is not None else []
                    )
                # A dirty task the engine cancelled (already counted as a
                # recompute at triage time) — run it in-process now.
                task_result = execute_task(
                    plankton, policy_list, task, upstream, should_cancel=None
                )
            final_results[task.task_id] = task_result
            partial = VerificationResult(policy_names=result.policy_names)
            for run in task_result.runs:
                partial.record(run)
            result.merge(partial)
            if task_result.has_violation and self.options.stop_at_first_violation:
                break

        # ---------------------------------------------------------- cache refill
        # Results can come from the ordered merge *or* from engine tasks
        # completed after the merge's early-stop break — both are valid and
        # cacheable; only genuinely missing/cancelled tasks block an entry.
        for pec_index, tasks in tasks_by_pec.items():
            if pec_index not in dirty:
                continue
            results = [
                final_results.get(task.task_id) or dirty_results.get(task.task_id)
                for task in tasks
            ]
            if any(r is None or r.cancelled for r in results):
                continue  # incomplete PECs (early stop) are not cacheable
            self.cache.store(
                fingerprints[pec_index],
                {
                    "kind": "verify",
                    "pec_index": pec_index,
                    "tasks": [
                        {
                            "failure": encode_failure(task.failure),
                            "runs": [encode_run(run) for run in task_result.runs],
                            "data_planes": [
                                encode_data_plane(plane)
                                for plane in task_result.data_planes
                            ],
                        }
                        for task, task_result in zip(tasks, results)
                    ],
                },
            )
            # The impact-invalidation layer has done its job for this PEC:
            # a fresh result is in the cache.  PECs whose recompute was cut
            # short (or that this request never expanded) stay pending.
            self._impact_pending["verify"].discard(pec_index)
        stats.cache_entries = len(self.cache)
        self.cache.save()

        result.elapsed_seconds = time.perf_counter() - started
        return result

    @staticmethod
    def _decode_verify_entry(entry: Dict, tasks) -> Optional[Dict[int, object]]:
        """Rebuild the per-task results of one cached PEC entry.

        Returns None (treat as a miss) when the entry does not line up with
        the graph's tasks — a schema drift guard; the fingerprint already
        covers the task shape.
        """
        from repro.engine.graph import TaskResult

        if entry.get("kind") != "verify":
            return None
        stored = entry.get("tasks", [])
        if len(stored) != len(tasks):
            return None
        decoded: Dict[int, object] = {}
        for task, payload in zip(tasks, stored):
            if tuple(payload["failure"]) != tuple(task.failure.failed_links):
                return None
            decoded[task.task_id] = TaskResult(
                task_id=task.task_id,
                runs=[decode_run(run) for run in payload["runs"]],
                data_planes=[
                    decode_data_plane(plane) for plane in payload["data_planes"]
                ],
            )
        return decoded

    # ------------------------------------------------------------------ transients
    def verify_transients(
        self,
        properties: Sequence,
        transient=None,
        failures=None,
        initial_events: Sequence[object] = (),
        scenarios: Optional[Sequence[object]] = None,
        pecs: Optional[Sequence[PacketEquivalenceClass]] = None,
    ):
        """Run (or re-run) transient campaigns for every BGP-bearing PEC.

        Clean PECs are served from the cache (one entry per PEC and
        transient payload); dirty ones route through the engine exactly as
        :func:`repro.transient.explorer.analyze_pec_transients_over_failures`
        would run them.  Results with ``collect_converged=True`` carry
        non-JSON state and are never cached.

        ``scenarios`` (lifecycle event scenarios, :class:`repro.scenarios.
        Scenario` values) crosses the failure scenarios per task; when
        omitted and ``transient.scenario_events > 0`` the scenario list is
        derived per PEC with the symmetry-reduced k-event enumerator.  The
        campaign fingerprint covers each task's (failure, scenario
        description) pair, so campaigns differing only in their scenarios
        never collide on a warm cache — "what breaks during next week's
        maintenance?" is one warm query.
        """
        from repro.engine.graph import (
            build_transient_task_graph,
            event_scenarios_for_pec,
        )
        from repro.transient.explorer import (
            TransientCampaignResult,
            TransientOptions,
            TransientTaskConfig,
            analyze_pec_transients_over_failures,
        )

        plankton = self.plankton
        transient = transient or TransientOptions()
        config = TransientTaskConfig(
            properties=tuple(properties),
            options=transient,
            initial_events=tuple(initial_events),
        )
        cacheable = not transient.collect_converged
        options = self.options
        if options.stop_at_first_violation != transient.stop_at_first_violation:
            options = dataclasses.replace(
                options, stop_at_first_violation=transient.stop_at_first_violation
            )
        run_plankton = (
            plankton if options is self.options else Plankton(plankton.network, options)
        )
        base = pec_base_fingerprints(
            plankton.network, plankton.pecs, plankton.dependency_graph
        )
        impact_dirty = self._impact_pending["transient"]

        started = time.perf_counter()
        campaign = TransientCampaignResult()
        stats = IncrementalRunStats(
            impacted_pecs=sorted(impact_dirty),
            delta_summary=self.last_delta.summary() if self.last_delta else "",
        )
        target = [pec for pec in (pecs if pecs is not None else plankton.pecs) if pec.has_bgp()]
        for pec in target:
            pec_scenarios = (
                list(scenarios)
                if scenarios is not None
                else event_scenarios_for_pec(
                    plankton.network, plankton.pec_by_index(pec.index), transient
                )
                or None
            )
            graph = build_transient_task_graph(
                plankton.network,
                plankton.pec_by_index(pec.index),
                options,
                config,
                failures=failures,
                scenarios=pec_scenarios,
            )
            campaign.failure_scenarios = max(
                campaign.failure_scenarios, graph.failure_scenarios
            )
            campaign.event_scenarios = max(
                campaign.event_scenarios, graph.event_scenarios
            )
            # The cached-entry key must distinguish *both* axes of the task
            # cross-product: failure links AND the lifecycle scenario baked
            # into each task's payload (two campaigns over the same failures
            # but different scenarios previously collided on a warm cache).
            shape = tuple(
                (tuple(task.failure.failed_links), task.transient.scenario or "")
                for task in graph.tasks
            )
            fingerprint = transient_fingerprint(base[pec.index], config, options, shape)
            stats.pecs_total += 1
            stats.tasks_total += len(graph.tasks)
            entry = None
            if cacheable and pec.index not in impact_dirty:
                entry = self.cache.lookup(fingerprint)
            if entry is not None and entry.get("kind") == "transient":
                runs = [decode_transient_run(payload) for payload in entry["runs"]]
                stats.pecs_from_cache += 1
                stats.tasks_from_cache += len(graph.tasks)
            else:
                # The failure scenarios were already enumerated (and
                # LEC-reduced) for the fingerprint's task shape; reuse them —
                # deduplicated back to the failure axis, since graph.tasks is
                # the (failure x scenario) cross-product — instead of
                # re-deriving the graph inside the campaign runner.
                unique_failures: List = []
                seen_failures = set()
                for task in graph.tasks:
                    key = tuple(task.failure.failed_links)
                    if key not in seen_failures:
                        seen_failures.add(key)
                        unique_failures.append(task.failure)
                sub = analyze_pec_transients_over_failures(
                    plankton.network,
                    pec,
                    properties,
                    transient=transient,
                    failures=unique_failures,
                    initial_events=initial_events,
                    scenarios=pec_scenarios,
                    plankton=run_plankton,
                )
                runs = sub.runs
                campaign.errors.extend(sub.errors)
                stats.pecs_recomputed += 1
                stats.tasks_recomputed += len(graph.tasks)
                stats.dirty_pecs.append(pec.index)
                prefixes = sum(1 for _prefix, devices in pec.bgp_origins if devices)
                complete = len(runs) == len(graph.tasks) * prefixes
                if cacheable and complete:
                    self.cache.store(
                        fingerprint,
                        {
                            "kind": "transient",
                            "pec_index": pec.index,
                            "runs": [encode_transient_run(run) for run in runs],
                        },
                    )
                    # As in verify(): the impact layer is satisfied for this
                    # PEC only once a fresh result is actually cached.
                    self._impact_pending["transient"].discard(pec.index)
            campaign.runs.extend(runs)
            if transient.stop_at_first_violation and any(run.violations for run in runs):
                break
        stats.dirty_pecs.sort()
        stats.cache_entries = len(self.cache)
        self.cache.save()
        campaign.elapsed_seconds = time.perf_counter() - started
        campaign.incremental = stats
        return campaign
