"""BGP as a path-vector protocol instance.

:class:`BgpInstance` realises the paper's extended-SPVP abstraction for BGP
(§3.4.1): import/export filters and ranking functions are inferred from the
device configurations (route maps, prefix lists, session types), and the
ranking function follows the BGP decision process — local preference, AS-path
length, MED, eBGP-over-iBGP, IGP cost to the next hop — with remaining ties
left unordered so the model checker explores the age-based tie-breaking
non-determinism of real BGP (the Figure 7(c) workload).

iBGP specifics modelled here:

* iBGP sessions ride on the IGP: the session between two speakers is only up
  when the IGP provides a route to the peer's loopback.  The verifier feeds
  that information in via ``session_up`` (computed from the converged states
  of the loopback PECs, §3.2).
* Routes learned from an iBGP peer are not re-advertised to other iBGP peers
  (standard full-mesh loop prevention), unless the exporter is configured as
  a route reflector for the target.
* The IGP cost used by the decision process can change when topology changes
  alter OSPF distances — this is the "ranking function may change" extension;
  here the ranking is always evaluated against the latest IGP costs supplied.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.config.objects import (
    BgpNeighbor,
    NetworkConfig,
    DEFAULT_LOCAL_PREF,
)
from repro.exceptions import ProtocolError
from repro.netaddr import Prefix
from repro.protocols.base import EPSILON, Path, PathVectorInstance, Route, RouteSource
from repro.protocols.filters import apply_route_map, maximum_local_pref

#: Type of the callable deciding whether an iBGP session is currently usable.
SessionPredicate = Callable[[str, str], bool]

#: Type of the callable giving the IGP cost from a node to a peer.
IgpCostFunction = Callable[[str, str], float]


def _always_up(_a: str, _b: str) -> bool:
    return True


def _zero_igp_cost(_a: str, _b: str) -> float:
    return 0.0


class BgpInstance(PathVectorInstance):
    """The BGP control plane for one prefix, as a :class:`PathVectorInstance`."""

    def __init__(
        self,
        network: NetworkConfig,
        prefix: Prefix,
        failed_links: Optional[Set[int]] = None,
        session_up: SessionPredicate = _always_up,
        igp_cost: IgpCostFunction = _zero_igp_cost,
        deterministic_tiebreak: bool = False,
    ) -> None:
        self.network = network
        self.prefix = prefix
        self.failed_links = set(failed_links or ())
        self.session_up = session_up
        self.igp_cost = igp_cost
        self.deterministic_tiebreak = deterministic_tiebreak
        self.name = f"bgp:{prefix}"

        self._speakers: List[str] = [
            name for name, cfg in network.devices.items() if cfg.bgp is not None
        ]
        self._speaker_set = set(self._speakers)
        self._origins = [
            name
            for name in self._speakers
            if any(p.contains_prefix(prefix) for p in network.device(name).bgp.networks)
        ]
        self._peers_cache: Dict[str, Tuple[str, ...]] = {}

    # ------------------------------------------------------------------ structure
    def nodes(self) -> Sequence[str]:
        return list(self._speakers)

    def origins(self) -> Sequence[str]:
        return list(self._origins)

    def _session(self, node: str, peer: str) -> Optional[BgpNeighbor]:
        bgp = self.network.device(node).bgp
        if bgp is None:
            return None
        return bgp.neighbor(peer)

    def _session_usable(self, node: str, peer: str) -> bool:
        """Whether the node->peer session can currently exchange routes."""
        session = self._session(node, peer)
        reverse = self._session(peer, node)
        if session is None or reverse is None:
            return False
        local_asn = self.network.device(node).bgp.asn
        if session.is_ibgp(local_asn):
            # iBGP rides on the IGP; usability is decided by the caller-supplied
            # predicate (loopback reachability under the current failures).
            return self.session_up(node, peer)
        # eBGP: single-hop sessions need a live physical link.
        live = self.network.topology.links_between(node, peer)
        return any(link.link_id not in self.failed_links for link in live)

    def peers(self, node: str) -> Sequence[str]:
        cached = self._peers_cache.get(node)
        if cached is not None:
            return cached
        bgp = self.network.device(node).bgp
        if bgp is None:
            result: Tuple[str, ...] = ()
        else:
            result = tuple(
                sorted(
                    session.peer
                    for session in bgp.neighbors
                    if session.peer in self._speaker_set and self._session_usable(node, session.peer)
                )
            )
        self._peers_cache[node] = result
        return result

    def invalidate_session_cache(self) -> None:
        """Drop cached peer sets (after failures or session changes)."""
        self._peers_cache.clear()

    # ------------------------------------------------------------------ filters
    def export(self, exporter: str, importer: str, route: Optional[Route]) -> Optional[Route]:
        if route is None:
            return None
        exporter_cfg = self.network.device(exporter)
        session = exporter_cfg.bgp.neighbor(importer) if exporter_cfg.bgp else None
        if session is None:
            return None
        local_asn = exporter_cfg.bgp.asn
        session_is_ibgp = session.is_ibgp(local_asn)
        # iBGP loop prevention: do not pass iBGP-learned routes to iBGP peers
        # unless acting as a route reflector for the client.
        if session_is_ibgp and route.source == RouteSource.IBGP and not session.route_reflector_client:
            return None
        result = apply_route_map(exporter_cfg, session.export_map, self.prefix, route)
        if not result.permitted or result.route is None:
            return None
        exported = result.route
        as_path_length = exported.as_path_length + (0 if session_is_ibgp else 1)
        return replace(
            exported,
            path=exported.path.prepend(exporter),
            as_path_length=as_path_length,
        )

    def import_(self, importer: str, exporter: str, route: Optional[Route]) -> Optional[Route]:
        if route is None:
            return None
        importer_cfg = self.network.device(importer)
        session = importer_cfg.bgp.neighbor(exporter) if importer_cfg.bgp else None
        if session is None:
            return None
        local_asn = importer_cfg.bgp.asn
        session_is_ibgp = session.is_ibgp(local_asn)
        if session_is_ibgp:
            source = RouteSource.IBGP
            local_pref = route.local_pref  # local-pref is carried across iBGP
            # The IGP cost to the next hop matters for iBGP-learned routes.
            igp_cost = int(self.igp_cost(importer, exporter))
        else:
            source = RouteSource.EBGP
            local_pref = importer_cfg.bgp.default_local_pref
            # eBGP peers are directly connected; no IGP recursion is involved.
            igp_cost = 0
        imported = replace(
            route,
            source=source,
            local_pref=local_pref,
            igp_cost=igp_cost,
        )
        result = apply_route_map(importer_cfg, session.import_map, self.prefix, imported)
        if not result.permitted or result.route is None:
            return None
        return result.route

    # ------------------------------------------------------------------ ranking
    def rank(self, node: str, route: Route) -> Tuple:
        """The BGP decision process as a sort key (lower is preferred).

        Steps: highest local preference, shortest AS path, lowest MED, eBGP
        over iBGP, lowest IGP cost to the next hop.  Remaining ties are left
        unordered (partial order) unless ``deterministic_tiebreak`` adds the
        next-hop name as a final tie-breaker (a stand-in for lowest router id).
        """
        if route.path == EPSILON:
            # A locally originated route is always preferred.
            return (-(10 ** 9), 0, 0, 0, 0) + (("",) if self.deterministic_tiebreak else ())
        key = (
            -route.local_pref,
            route.as_path_length,
            route.med,
            0 if route.source == RouteSource.EBGP else 1,
            route.igp_cost,
        )
        if self.deterministic_tiebreak:
            key = key + (route.next_hop or "",)
        return key

    def multipath_allowed(self, node: str) -> bool:
        # The paper's prototype (and this reproduction) does not support BGP
        # multipath (§6); the configuration flag exists but is ignored here.
        return False

    def session_rank_bound(self, importer: str, exporter: str) -> Optional[Tuple]:
        """Static per-session rank bound from the §4.1.2 determinism analysis.

        Delegates to :meth:`repro.core.determinism.BgpDeterminism.
        session_rank_bound` (local-pref upper bound, 0/1 AS-hop distance, IGP
        cost), built lazily and cached — the analysis walks every route map
        once per instance, not per query.
        """
        determinism = getattr(self, "_determinism", None)
        if determinism is None:
            # Imported here to avoid a module cycle: repro.core.determinism
            # imports this module for the BgpInstance type.
            from repro.core.determinism import BgpDeterminism

            determinism = BgpDeterminism(self)
            self._determinism = determinism
        return determinism.session_rank_bound(importer, exporter)

    # ------------------------------------------------------------------ helpers
    def origin_route(self, node: str) -> Route:
        """The locally originated route of an origin node."""
        if node not in self._origins:
            raise ProtocolError(f"{node} does not originate {self.prefix} into BGP")
        return Route(
            path=EPSILON,
            source=RouteSource.EBGP,
            local_pref=self.network.device(node).bgp.default_local_pref,
            as_path_length=0,
            origin_node=node,
        )

    def highest_possible_local_pref(self, node: str) -> int:
        """Upper bound on the local preference any import at ``node`` can assign."""
        config = self.network.device(node)
        default = config.bgp.default_local_pref if config.bgp else DEFAULT_LOCAL_PREF
        return maximum_local_pref(config, default)


def build_bgp_instance(
    network: NetworkConfig,
    prefix: Prefix,
    failed_links: Optional[Set[int]] = None,
    session_up: SessionPredicate = _always_up,
    igp_cost: IgpCostFunction = _zero_igp_cost,
    deterministic_tiebreak: bool = False,
) -> BgpInstance:
    """Convenience constructor mirroring :func:`build_ospf_instance`."""
    return BgpInstance(
        network,
        prefix,
        failed_links=failed_links,
        session_up=session_up,
        igp_cost=igp_cost,
        deterministic_tiebreak=deterministic_tiebreak,
    )
