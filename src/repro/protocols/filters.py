"""Route-map and prefix-list evaluation.

Route maps are the concrete syntax from which the abstract import/export
filters of the protocol model are inferred (paper §3.4.1 and Appendix B).
:func:`apply_route_map` evaluates an ordered route map against a candidate
route for a given prefix and returns either a transformed route or a denial.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.config.objects import DeviceConfig, RouteMap, RouteMapClause
from repro.netaddr import Prefix
from repro.protocols.base import Route


@dataclass(frozen=True)
class RouteMapResult:
    """Outcome of evaluating a route map: permitted or not, and the new route."""

    permitted: bool
    route: Optional[Route] = None
    matched_sequence: Optional[int] = None


def _clause_matches(
    clause: RouteMapClause,
    device: DeviceConfig,
    prefix: Prefix,
    route: Route,
) -> bool:
    """Whether ``clause`` matches ``route`` advertised for ``prefix``."""
    match = clause.match
    if match.is_empty():
        return True
    if match.prefix_list is not None:
        if not device.prefix_list(match.prefix_list).permits(prefix):
            return False
    if match.prefixes:
        if not any(candidate.contains_prefix(prefix) for candidate in match.prefixes):
            return False
    if match.communities:
        if not all(community in route.communities for community in match.communities):
            return False
    if match.min_prefix_length is not None and prefix.length < match.min_prefix_length:
        return False
    if match.max_prefix_length is not None and prefix.length > match.max_prefix_length:
        return False
    if match.as_path_contains is not None:
        # The abstract model tracks AS-path length, not the member ASes; a
        # "contains" match is approximated by requiring a non-empty path.
        if route.as_path_length == 0:
            return False
    return True


def _apply_actions(clause: RouteMapClause, route: Route) -> Route:
    """Apply the clause's set actions to ``route`` and return the new route."""
    actions = clause.actions
    updates = {}
    if actions.local_preference is not None:
        updates["local_pref"] = actions.local_preference
    if actions.med is not None:
        updates["med"] = actions.med
    if actions.prepend_count:
        updates["as_path_length"] = route.as_path_length + actions.prepend_count
    if actions.add_communities or actions.remove_communities:
        communities = set(route.communities)
        communities.update(actions.add_communities)
        communities.difference_update(actions.remove_communities)
        updates["communities"] = frozenset(communities)
    if not updates:
        return route
    from dataclasses import replace

    return replace(route, **updates)


def apply_route_map(
    device: DeviceConfig,
    route_map_name: Optional[str],
    prefix: Prefix,
    route: Route,
) -> RouteMapResult:
    """Evaluate the named route map on ``route`` for ``prefix``.

    A missing route-map name means "no policy": the route is permitted
    unchanged.  Route maps end in an implicit deny, matching vendor
    behaviour.
    """
    if route_map_name is None:
        return RouteMapResult(permitted=True, route=route)
    route_map = device.route_map(route_map_name)
    for clause in route_map.sorted_clauses():
        if _clause_matches(clause, device, prefix, route):
            if not clause.permit:
                return RouteMapResult(permitted=False, matched_sequence=clause.sequence)
            return RouteMapResult(
                permitted=True,
                route=_apply_actions(clause, route),
                matched_sequence=clause.sequence,
            )
    return RouteMapResult(permitted=False)


def route_map_sets_highest_local_pref(
    device: DeviceConfig,
    route_map_name: Optional[str],
    prefix: Prefix,
    ceiling: int,
) -> bool:
    """Whether the route map unconditionally grants local-pref >= ``ceiling``.

    Used by the deterministic-node detection heuristic for BGP (paper
    §4.1.2): an update is a guaranteed local-pref winner only if it matches an
    import clause that explicitly gives it the highest local preference among
    all import filters, independent of attributes we cannot predict
    (communities assigned upstream, etc.).  The check is conservative: only
    clauses with an empty match or a pure prefix match count.
    """
    if route_map_name is None:
        return False
    route_map = device.route_maps.get(route_map_name)
    if route_map is None:
        return False
    for clause in route_map.sorted_clauses():
        unconditional = clause.match.is_empty() or (
            not clause.match.communities
            and clause.match.as_path_contains is None
            and _prefix_only_match(clause, device, prefix)
        )
        if not unconditional:
            # A conditional clause earlier in the map may or may not fire; we
            # cannot be sure the unconditional one below is reached.
            return False
        if clause.permit and clause.actions.local_preference is not None:
            return clause.actions.local_preference >= ceiling
        if clause.permit:
            return False
    return False


def _prefix_only_match(clause: RouteMapClause, device: DeviceConfig, prefix: Prefix) -> bool:
    """True if the clause's match depends only on the prefix and matches it."""
    match = clause.match
    if match.prefix_list is not None and not device.prefix_list(match.prefix_list).permits(prefix):
        return False
    if match.prefixes and not any(p.contains_prefix(prefix) for p in match.prefixes):
        return False
    return True


def maximum_local_pref(device: DeviceConfig, default_local_pref: int) -> int:
    """The highest local preference any import policy on ``device`` can assign."""
    highest = default_local_pref
    for route_map in device.route_maps.values():
        for clause in route_map.clauses:
            if clause.permit and clause.actions.local_preference is not None:
                highest = max(highest, clause.actions.local_preference)
    return highest
