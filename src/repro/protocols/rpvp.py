"""The Reduced Path Vector Protocol (RPVP), paper §3.4.2, Algorithm 1.

RPVP replaces SPVP's message passing with a shared-memory model: the network
state is exactly the best route of every node.  At each step one *enabled*
node is non-deterministically picked; it either clears an invalid best path
or adopts the advertisement of one of its best updating peers (again a
non-deterministic choice when several peers are tied under the ranking
function).  When no node is enabled the state is converged.

Theorem 1 of the paper shows that exploring RPVP executions (with failures
applied before the protocol starts) covers every converged state SPVP can
reach, so the model checker only needs this much simpler protocol.

This module implements the raw, *unoptimized* semantics.  The verifier core
layers partial-order reduction and the other §4 optimizations on top of the
successor relation defined here.
"""

from __future__ import annotations

import weakref
from array import array
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import ProtocolError
from repro.protocols.base import EPSILON, Path, PathVectorInstance, Route
from repro.protocols.interning import RouteInternTable


# --------------------------------------------------------------------------- state
class _NodeSpace:
    """The shared backbone of all states over one (sorted) node set.

    Every state of one protocol instance assigns routes to the same nodes, so
    the node names, the name -> slot index and the route intern table live
    here exactly once and each state stores only a flat vector of route ids.
    """

    __slots__ = ("names", "slot_of", "table", "__weakref__")

    def __init__(self, names: Tuple[str, ...]) -> None:
        self.names = names
        self.slot_of = {name: slot for slot, name in enumerate(names)}
        self.table = RouteInternTable()


#: Node spaces interned per node set: explorations over the same instance (and
#: states rebuilt from pickles) share one backbone.  Weak values so a
#: long-lived process (the engine's persistent pool workers) does not
#: accumulate backbones of networks it no longer holds states for.
_NODE_SPACES: "weakref.WeakValueDictionary[Tuple[str, ...], _NodeSpace]" = (
    weakref.WeakValueDictionary()
)


def _space_for(names: Tuple[str, ...]) -> _NodeSpace:
    space = _NODE_SPACES.get(names)
    if space is None:
        space = _NodeSpace(names)
        _NODE_SPACES[names] = space
    return space


def node_space_for(instance: PathVectorInstance) -> _NodeSpace:
    """The shared node space (and intern table) of ``instance``'s RPVP states."""
    return _space_for(tuple(sorted(instance.nodes())))


class RpvpState:
    """An RPVP network state: the best route of every node.

    States are persistent (immutable with structural sharing of the
    backbone): the sorted node vector and the route intern table live once in
    a shared :class:`_NodeSpace`, and each state stores only a flat
    ``array('i')`` of route ids.  Copy-on-write in :meth:`with_best` is one
    memcpy of machine integers, equality is an array compare and hashing
    folds the raw bytes — no boxed :class:`Route` objects are touched on the
    hot paths.  Each derived state also remembers its parent and single-slot
    delta, which the model checker uses for O(1) incremental Zobrist
    fingerprints (paper §4.4) and incremental successor candidate sets.
    """

    __slots__ = (
        "_space",
        "_ids",
        "parent",
        "delta",
        "_fp_token",
        "_fp",
        "_hash",
        "_engine_token",
        "_engine_cache",
        "_stability_token",
        "_stability_cache",
    )

    def __init__(self, assignments: Iterable[Tuple[str, Optional[Route]]]) -> None:
        pairs = tuple(assignments)
        space = _space_for(tuple(name for name, _route in pairs))
        route_id = space.table.route_id
        self._init(space, array("i", [route_id(route) for _name, route in pairs]))

    def _init(
        self,
        space: _NodeSpace,
        ids: "array[int]",
        parent: Optional["RpvpState"] = None,
        delta: Optional[Tuple[int, int, int]] = None,
    ) -> "RpvpState":
        self._space = space
        self._ids = ids
        #: The state this one was derived from via :meth:`with_best` (None for
        #: states built from scratch).
        self.parent = parent
        #: ``(slot, old_id, new_id)`` of the single changed entry (intern-table
        #: route ids; consumers outside this module use the slot only).
        self.delta = delta
        self._fp_token = None
        self._fp = 0
        self._hash = None
        self._engine_token = None
        self._engine_cache = None
        self._stability_token = None
        self._stability_cache = None
        return self

    @staticmethod
    def from_dict(best: Dict[str, Optional[Route]]) -> "RpvpState":
        """Build a canonical state from a node -> route mapping."""
        return RpvpState(sorted(best.items(), key=lambda item: item[0]))

    @property
    def assignments(self) -> Tuple[Tuple[str, Optional[Route]], ...]:
        """The (node, route) pairs in node order (materialized on demand)."""
        return tuple(zip(self._space.names, self.routes()))

    @property
    def intern_table(self) -> RouteInternTable:
        """The shared route intern table this state resolves ids through."""
        return self._space.table

    def routes(self) -> List[Optional[Route]]:
        """The route vector in node order."""
        route = self._space.table.route
        return [route(rid) for rid in self._ids]

    def items(self) -> Iterable[Tuple[str, Optional[Route]]]:
        """Iterate (node, route) pairs without materializing a tuple."""
        route = self._space.table.route
        for name, rid in zip(self._space.names, self._ids):
            yield name, route(rid)

    def detach(self) -> "RpvpState":
        """Drop the search-time caches once the search is done with this state.

        States handed out of a search — converged states kept in results —
        would otherwise pin their whole DFS ancestor chain in memory, plus
        the exploration's fingerprinter (and through it its Zobrist
        components) and candidate engine (and through it the protocol
        instance).  The id vector stays resolvable through the shared node
        space, so lookups and equality are unaffected; future
        fingerprint/candidate computations fall back to a from-scratch
        evaluation.  Returns self for chaining.
        """
        self.parent = None
        self.delta = None
        self._fp_token = None
        self._fp = 0
        self._engine_token = None
        self._engine_cache = None
        self._stability_token = None
        self._stability_cache = None
        return self

    @property
    def node_names(self) -> Tuple[str, ...]:
        """The sorted node names (shared across states of one instance)."""
        return self._space.names

    def best(self, node: str) -> Optional[Route]:
        """The best route of ``node`` (None = no route, the paper's ⊥)."""
        try:
            slot = self._space.slot_of[node]
        except KeyError:
            raise ProtocolError(f"node {node!r} not part of this RPVP state") from None
        return self._space.table.route(self._ids[slot])

    def as_dict(self) -> Dict[str, Optional[Route]]:
        """A mutable copy of the assignment."""
        return dict(zip(self._space.names, self.routes()))

    def with_best(self, node: str, route: Optional[Route]) -> "RpvpState":
        """A new state with ``node``'s best route replaced.

        One flat array copy plus an integer store, recording the single-slot
        delta for incremental fingerprinting / successor generation.
        """
        try:
            slot = self._space.slot_of[node]
        except KeyError:
            raise ProtocolError(f"node {node!r} not part of this RPVP state") from None
        ids = array("i", self._ids)
        old = ids[slot]
        new = self._space.table.route_id(route)
        ids[slot] = new
        return RpvpState.__new__(RpvpState)._init(
            self._space, ids, parent=self, delta=(slot, old, new)
        )

    def nodes_with_routes(self) -> List[str]:
        """Nodes that currently hold a route."""
        return [name for name, rid in zip(self._space.names, self._ids) if rid]

    def describe(self) -> str:
        """Multi-line human-readable dump used in trails."""
        lines = []
        for name, route in zip(self._space.names, self.routes()):
            lines.append(f"  {name}: {route.describe() if route else '<no route>'}")
        return "\n".join(lines)

    # ------------------------------------------------------------------ hashing
    def fingerprint(self, hasher) -> int:
        """This state's Zobrist fingerprint under ``hasher``.

        ``hasher`` provides ``component(slot, entry) -> int`` (see
        :class:`repro.modelcheck.hashing.ZobristFingerprinter`).  The value is
        the XOR of all per-slot components, computed incrementally from the
        parent's cached fingerprint when this state came out of
        :meth:`with_best` — O(1) amortized during a depth-first search, where
        parents are always fingerprinted before their children.
        """
        if self._fp_token is hasher:
            return self._fp
        table = self._space.table
        # Hashers bound to this state's own intern table fold ids directly;
        # foreign hashers (the property-test oracles build their own
        # StateInterner-backed one) get the materialized routes, reproducing
        # the pre-interning component keys exactly.
        fast = getattr(hasher, "interner", None) is table
        # Walk up to the nearest ancestor already fingerprinted by ``hasher``.
        chain: List[RpvpState] = []
        state: Optional[RpvpState] = self
        while (
            state is not None
            and state._fp_token is not hasher
            and state.parent is not None
            and state.delta is not None
        ):
            chain.append(state)
            state = state.parent
        if state is None or state._fp_token is not hasher:
            base = state if state is not None else self
            value = 0
            if fast:
                component_id = hasher.component_id
                for slot, rid in enumerate(base._ids):
                    value ^= component_id(slot, rid)
            else:
                route = table.route
                for slot, rid in enumerate(base._ids):
                    value ^= hasher.component(slot, route(rid))
            base._fp_token = hasher
            base._fp = value
        else:
            value = state._fp
        if fast:
            component_id = hasher.component_id
            for derived in reversed(chain):
                slot, old, new = derived.delta  # type: ignore[misc]
                value ^= component_id(slot, old) ^ component_id(slot, new)
                derived._fp_token = hasher
                derived._fp = value
        else:
            route = table.route
            for derived in reversed(chain):
                slot, old, new = derived.delta  # type: ignore[misc]
                value = hasher.delta(value, slot, route(old), route(new))
                derived._fp_token = hasher
                derived._fp = value
        return value

    # ------------------------------------------------------------------ dunder
    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, RpvpState):
            return NotImplemented
        if self._space is other._space:
            # One shared (interned) space per node set, so ids are comparable.
            return self._ids == other._ids
        if self._space.names != other._space.names:
            return False
        # Distinct spaces over equal names can only meet across an interning
        # epoch (e.g. a state that outlived a garbage-collected space);
        # compare the materialized routes.
        return self.routes() == other.routes()

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self._space.names, self._ids.tobytes()))
        return self._hash

    def __repr__(self) -> str:
        decided = sum(1 for route in self.routes() if route is not None)
        return f"RpvpState({decided}/{len(self)} decided)"

    def __reduce__(self):
        return (RpvpState, (self.assignments,))

    def __len__(self) -> int:
        return len(self._space.names)


@dataclass(frozen=True)
class RpvpTransition:
    """One RPVP step: ``node`` adopted ``new_route`` (None = cleared invalid path)."""

    node: str
    new_route: Optional[Route]
    from_peer: Optional[str] = None

    def describe(self) -> str:
        if self.new_route is None:
            return f"{self.node} withdraws its (invalid) best path"
        peer = f" from {self.from_peer}" if self.from_peer else ""
        return f"{self.node} selects {self.new_route.describe()}{peer}"


def initial_state(instance: PathVectorInstance) -> RpvpState:
    """The RPVP initial state: origins hold their own route, others hold ⊥."""
    best: Dict[str, Optional[Route]] = {}
    origin_set = set(instance.origins())
    for node in instance.nodes():
        if node in origin_set:
            best[node] = instance.origin_route(node)  # type: ignore[attr-defined]
        else:
            best[node] = None
    return RpvpState.from_dict(best)


def is_invalid(instance: PathVectorInstance, state: RpvpState, node: str) -> bool:
    """The paper's ``invalid(n)`` predicate.

    A best path is invalid when its next hop no longer backs it: the next hop
    is not a peer any more (e.g. the link failed), or the next hop's current
    best path is not the remainder of the node's path.
    """
    route = state.best(node)
    if route is None or route.path == EPSILON:
        return False
    head = route.path.head
    if head not in instance.peers(node):
        return True
    head_route = state.best(head)
    head_path = head_route.path if head_route is not None else None
    return head_path != route.path.rest


def updating_peers(
    instance: PathVectorInstance,
    state: RpvpState,
    node: str,
    against: Optional[Route] = None,
) -> List[Tuple[str, Route]]:
    """Peers whose current advertisement would improve ``node``'s best path.

    ``against`` overrides the incumbent route (used after an invalidation,
    where the comparison is against ⊥).
    Returns (peer, imported advertisement) pairs.
    """
    incumbent = state.best(node) if against is None else against
    candidates: List[Tuple[str, Route]] = []
    for peer in instance.peers(node):
        advertisement = instance.advertisement(node, peer, state.best(peer))
        if advertisement is None:
            continue
        if instance.better(node, advertisement, incumbent):
            candidates.append((peer, advertisement))
    return candidates


def best_updates(
    instance: PathVectorInstance,
    node: str,
    candidates: Sequence[Tuple[str, Route]],
) -> List[Tuple[str, Route]]:
    """The highest-ranked candidates (the paper's set ``U``); ties all kept."""
    if not candidates:
        return []
    best_key = min(instance.cached_rank(node, route) for _peer, route in candidates)
    return [
        (peer, route)
        for peer, route in candidates
        if instance.cached_rank(node, route) == best_key
    ]


def enabled_nodes(instance: PathVectorInstance, state: RpvpState) -> List[str]:
    """Algorithm 1, line 5: nodes with an invalid path or an improving peer."""
    enabled = []
    for node in instance.nodes():
        if is_invalid(instance, state, node):
            enabled.append(node)
        elif updating_peers(instance, state, node):
            enabled.append(node)
    return enabled


def is_converged(instance: PathVectorInstance, state: RpvpState) -> bool:
    """True when no node is enabled (Algorithm 1, lines 6-8)."""
    return not enabled_nodes(instance, state)


def step_node(
    instance: PathVectorInstance,
    state: RpvpState,
    node: str,
) -> List[Tuple[RpvpTransition, RpvpState]]:
    """All outcomes of executing ``node`` once (Algorithm 1, lines 10-16).

    If the node's path is invalid it is first cleared; then, among the peers
    tied for the best update, each choice produces one successor.  When there
    is no updating peer after an invalidation, the single successor has the
    path cleared.
    """
    working_state = state
    cleared = False
    if is_invalid(instance, state, node):
        working_state = state.with_best(node, None)
        cleared = True
    candidates = updating_peers(instance, working_state, node)
    best = best_updates(instance, node, candidates)
    if not best:
        if cleared:
            return [(RpvpTransition(node=node, new_route=None), working_state)]
        return []
    successors = []
    for peer, route in best:
        transition = RpvpTransition(node=node, new_route=route, from_peer=peer)
        successors.append((transition, working_state.with_best(node, route)))
    return successors


def rpvp_successors(
    instance: PathVectorInstance,
    state: RpvpState,
) -> List[Tuple[RpvpTransition, RpvpState]]:
    """All successors of ``state`` under the unoptimized RPVP semantics."""
    successors: List[Tuple[RpvpTransition, RpvpState]] = []
    for node in enabled_nodes(instance, state):
        successors.extend(step_node(instance, state, node))
    return successors


def run_to_convergence(
    instance: PathVectorInstance,
    state: Optional[RpvpState] = None,
    choose: Optional[Callable[[List[Tuple[RpvpTransition, RpvpState]]], int]] = None,
    max_steps: int = 1_000_000,
) -> Tuple[RpvpState, List[RpvpTransition]]:
    """Execute one RPVP path to convergence (a simulation, not a search).

    ``choose`` picks among the available successors (default: the first one,
    i.e. a deterministic simulation in the style of Batfish).  Raises
    :class:`ProtocolError` when ``max_steps`` is exceeded, which can happen
    for genuinely divergent configurations.
    """
    current = state if state is not None else initial_state(instance)
    history: List[RpvpTransition] = []
    for _ in range(max_steps):
        successors = rpvp_successors(instance, current)
        if not successors:
            return current, history
        index = choose(successors) if choose is not None else 0
        transition, current = successors[index]
        history.append(transition)
    raise ProtocolError(
        f"RPVP did not converge within {max_steps} steps for {instance.name}"
    )


def forwarding_next_hops(state: RpvpState) -> Dict[str, Optional[str]]:
    """The next hop each node forwards to in ``state`` (None = no route)."""
    result: Dict[str, Optional[str]] = {}
    for node, route in state.items():
        if route is None:
            result[node] = None
        elif route.path == EPSILON:
            result[node] = node  # the origin delivers locally
        else:
            result[node] = route.path.head
    return result
