"""The Reduced Path Vector Protocol (RPVP), paper §3.4.2, Algorithm 1.

RPVP replaces SPVP's message passing with a shared-memory model: the network
state is exactly the best route of every node.  At each step one *enabled*
node is non-deterministically picked; it either clears an invalid best path
or adopts the advertisement of one of its best updating peers (again a
non-deterministic choice when several peers are tied under the ranking
function).  When no node is enabled the state is converged.

Theorem 1 of the paper shows that exploring RPVP executions (with failures
applied before the protocol starts) covers every converged state SPVP can
reach, so the model checker only needs this much simpler protocol.

This module implements the raw, *unoptimized* semantics.  The verifier core
layers partial-order reduction and the other §4 optimizations on top of the
successor relation defined here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import ProtocolError
from repro.protocols.base import EPSILON, Path, PathVectorInstance, Route


@dataclass(frozen=True)
class RpvpState:
    """An RPVP network state: the best route of every node.

    The assignment is stored as a tuple sorted by node name so states hash
    and compare structurally — the representation the model checker interns
    (paper §4.4).
    """

    assignments: Tuple[Tuple[str, Optional[Route]], ...]

    @staticmethod
    def from_dict(best: Dict[str, Optional[Route]]) -> "RpvpState":
        """Build a canonical state from a node -> route mapping."""
        return RpvpState(tuple(sorted(best.items(), key=lambda item: item[0])))

    def best(self, node: str) -> Optional[Route]:
        """The best route of ``node`` (None = no route, the paper's ⊥)."""
        index = self.__dict__.get("_index")
        if index is None:
            index = {name: route for name, route in self.assignments}
            object.__setattr__(self, "_index", index)
        try:
            return index[node]
        except KeyError:
            raise ProtocolError(f"node {node!r} not part of this RPVP state") from None

    def as_dict(self) -> Dict[str, Optional[Route]]:
        """A mutable copy of the assignment."""
        return dict(self.assignments)

    def with_best(self, node: str, route: Optional[Route]) -> "RpvpState":
        """A new state with ``node``'s best route replaced."""
        updated = tuple(
            (name, route if name == node else current)
            for name, current in self.assignments
        )
        return RpvpState(updated)

    def nodes_with_routes(self) -> List[str]:
        """Nodes that currently hold a route."""
        return [name for name, route in self.assignments if route is not None]

    def describe(self) -> str:
        """Multi-line human-readable dump used in trails."""
        lines = []
        for name, route in self.assignments:
            lines.append(f"  {name}: {route.describe() if route else '<no route>'}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.assignments)


@dataclass(frozen=True)
class RpvpTransition:
    """One RPVP step: ``node`` adopted ``new_route`` (None = cleared invalid path)."""

    node: str
    new_route: Optional[Route]
    from_peer: Optional[str] = None

    def describe(self) -> str:
        if self.new_route is None:
            return f"{self.node} withdraws its (invalid) best path"
        peer = f" from {self.from_peer}" if self.from_peer else ""
        return f"{self.node} selects {self.new_route.describe()}{peer}"


def initial_state(instance: PathVectorInstance) -> RpvpState:
    """The RPVP initial state: origins hold their own route, others hold ⊥."""
    best: Dict[str, Optional[Route]] = {}
    origin_set = set(instance.origins())
    for node in instance.nodes():
        if node in origin_set:
            best[node] = instance.origin_route(node)  # type: ignore[attr-defined]
        else:
            best[node] = None
    return RpvpState.from_dict(best)


def is_invalid(instance: PathVectorInstance, state: RpvpState, node: str) -> bool:
    """The paper's ``invalid(n)`` predicate.

    A best path is invalid when its next hop no longer backs it: the next hop
    is not a peer any more (e.g. the link failed), or the next hop's current
    best path is not the remainder of the node's path.
    """
    route = state.best(node)
    if route is None or route.path == EPSILON:
        return False
    head = route.path.head
    if head not in instance.peers(node):
        return True
    head_route = state.best(head)
    head_path = head_route.path if head_route is not None else None
    return head_path != route.path.rest


def updating_peers(
    instance: PathVectorInstance,
    state: RpvpState,
    node: str,
    against: Optional[Route] = None,
) -> List[Tuple[str, Route]]:
    """Peers whose current advertisement would improve ``node``'s best path.

    ``against`` overrides the incumbent route (used after an invalidation,
    where the comparison is against ⊥).
    Returns (peer, imported advertisement) pairs.
    """
    incumbent = state.best(node) if against is None else against
    candidates: List[Tuple[str, Route]] = []
    for peer in instance.peers(node):
        advertisement = instance.advertisement(node, peer, state.best(peer))
        if advertisement is None:
            continue
        if instance.better(node, advertisement, incumbent):
            candidates.append((peer, advertisement))
    return candidates


def best_updates(
    instance: PathVectorInstance,
    node: str,
    candidates: Sequence[Tuple[str, Route]],
) -> List[Tuple[str, Route]]:
    """The highest-ranked candidates (the paper's set ``U``); ties all kept."""
    if not candidates:
        return []
    best_key = min(instance.cached_rank(node, route) for _peer, route in candidates)
    return [
        (peer, route)
        for peer, route in candidates
        if instance.cached_rank(node, route) == best_key
    ]


def enabled_nodes(instance: PathVectorInstance, state: RpvpState) -> List[str]:
    """Algorithm 1, line 5: nodes with an invalid path or an improving peer."""
    enabled = []
    for node in instance.nodes():
        if is_invalid(instance, state, node):
            enabled.append(node)
        elif updating_peers(instance, state, node):
            enabled.append(node)
    return enabled


def is_converged(instance: PathVectorInstance, state: RpvpState) -> bool:
    """True when no node is enabled (Algorithm 1, lines 6-8)."""
    return not enabled_nodes(instance, state)


def step_node(
    instance: PathVectorInstance,
    state: RpvpState,
    node: str,
) -> List[Tuple[RpvpTransition, RpvpState]]:
    """All outcomes of executing ``node`` once (Algorithm 1, lines 10-16).

    If the node's path is invalid it is first cleared; then, among the peers
    tied for the best update, each choice produces one successor.  When there
    is no updating peer after an invalidation, the single successor has the
    path cleared.
    """
    working_state = state
    cleared = False
    if is_invalid(instance, state, node):
        working_state = state.with_best(node, None)
        cleared = True
    candidates = updating_peers(instance, working_state, node)
    best = best_updates(instance, node, candidates)
    if not best:
        if cleared:
            return [(RpvpTransition(node=node, new_route=None), working_state)]
        return []
    successors = []
    for peer, route in best:
        transition = RpvpTransition(node=node, new_route=route, from_peer=peer)
        successors.append((transition, working_state.with_best(node, route)))
    return successors


def rpvp_successors(
    instance: PathVectorInstance,
    state: RpvpState,
) -> List[Tuple[RpvpTransition, RpvpState]]:
    """All successors of ``state`` under the unoptimized RPVP semantics."""
    successors: List[Tuple[RpvpTransition, RpvpState]] = []
    for node in enabled_nodes(instance, state):
        successors.extend(step_node(instance, state, node))
    return successors


def run_to_convergence(
    instance: PathVectorInstance,
    state: Optional[RpvpState] = None,
    choose: Optional[Callable[[List[Tuple[RpvpTransition, RpvpState]]], int]] = None,
    max_steps: int = 1_000_000,
) -> Tuple[RpvpState, List[RpvpTransition]]:
    """Execute one RPVP path to convergence (a simulation, not a search).

    ``choose`` picks among the available successors (default: the first one,
    i.e. a deterministic simulation in the style of Batfish).  Raises
    :class:`ProtocolError` when ``max_steps`` is exceeded, which can happen
    for genuinely divergent configurations.
    """
    current = state if state is not None else initial_state(instance)
    history: List[RpvpTransition] = []
    for _ in range(max_steps):
        successors = rpvp_successors(instance, current)
        if not successors:
            return current, history
        index = choose(successors) if choose is not None else 0
        transition, current = successors[index]
        history.append(transition)
    raise ProtocolError(
        f"RPVP did not converge within {max_steps} steps for {instance.name}"
    )


def forwarding_next_hops(state: RpvpState) -> Dict[str, Optional[str]]:
    """The next hop each node forwards to in ``state`` (None = no route)."""
    result: Dict[str, Optional[str]] = {}
    for node, route in state.assignments:
        if route is None:
            result[node] = None
        elif route.path == EPSILON:
            result[node] = node  # the origin delivers locally
        else:
            result[node] = route.path.head
    return result
