"""The Reduced Path Vector Protocol (RPVP), paper §3.4.2, Algorithm 1.

RPVP replaces SPVP's message passing with a shared-memory model: the network
state is exactly the best route of every node.  At each step one *enabled*
node is non-deterministically picked; it either clears an invalid best path
or adopts the advertisement of one of its best updating peers (again a
non-deterministic choice when several peers are tied under the ranking
function).  When no node is enabled the state is converged.

Theorem 1 of the paper shows that exploring RPVP executions (with failures
applied before the protocol starts) covers every converged state SPVP can
reach, so the model checker only needs this much simpler protocol.

This module implements the raw, *unoptimized* semantics.  The verifier core
layers partial-order reduction and the other §4 optimizations on top of the
successor relation defined here.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import ProtocolError
from repro.protocols.base import EPSILON, Path, PathVectorInstance, Route


# --------------------------------------------------------------------------- state
#: Routes are stored in fixed-size chunks so ``with_best`` copies one chunk
#: plus the (short) chunk spine instead of rebuilding the whole assignment.
_CHUNK_SHIFT = 4
_CHUNK_SIZE = 1 << _CHUNK_SHIFT
_CHUNK_MASK = _CHUNK_SIZE - 1


class _NodeSpace:
    """The shared backbone of all states over one (sorted) node set.

    Every state of one protocol instance assigns routes to the same nodes, so
    the node names and the name -> slot index live here exactly once and each
    state stores only its route vector.
    """

    __slots__ = ("names", "slot_of", "__weakref__")

    def __init__(self, names: Tuple[str, ...]) -> None:
        self.names = names
        self.slot_of = {name: slot for slot, name in enumerate(names)}


#: Node spaces interned per node set: explorations over the same instance (and
#: states rebuilt from pickles) share one backbone.  Weak values so a
#: long-lived process (the engine's persistent pool workers) does not
#: accumulate backbones of networks it no longer holds states for.
_NODE_SPACES: "weakref.WeakValueDictionary[Tuple[str, ...], _NodeSpace]" = (
    weakref.WeakValueDictionary()
)


def _space_for(names: Tuple[str, ...]) -> _NodeSpace:
    space = _NODE_SPACES.get(names)
    if space is None:
        space = _NodeSpace(names)
        _NODE_SPACES[names] = space
    return space


def _chunks_of(routes: Sequence[Optional[Route]]) -> Tuple[Tuple[Optional[Route], ...], ...]:
    return tuple(
        tuple(routes[start : start + _CHUNK_SIZE])
        for start in range(0, len(routes), _CHUNK_SIZE)
    )


class RpvpState:
    """An RPVP network state: the best route of every node.

    States are persistent (immutable with structural sharing): the sorted node
    vector lives once in a shared :class:`_NodeSpace`, routes are stored in a
    chunked persistent vector, and :meth:`with_best` copies a single chunk
    plus the chunk spine — O(sqrt(n))-ish instead of rebuilding an O(n)
    tuple.  Each derived state also remembers its parent and single-slot
    delta, which the model checker uses for O(1) incremental Zobrist
    fingerprints (paper §4.4) and incremental successor candidate sets.
    """

    __slots__ = (
        "_space",
        "_chunks",
        "parent",
        "delta",
        "_fp_token",
        "_fp",
        "_hash",
        "_engine_token",
        "_engine_cache",
        "_stability_token",
        "_stability_cache",
    )

    def __init__(self, assignments: Iterable[Tuple[str, Optional[Route]]]) -> None:
        pairs = tuple(assignments)
        space = _space_for(tuple(name for name, _route in pairs))
        self._init(space, _chunks_of([route for _name, route in pairs]))

    def _init(
        self,
        space: _NodeSpace,
        chunks: Tuple[Tuple[Optional[Route], ...], ...],
        parent: Optional["RpvpState"] = None,
        delta: Optional[Tuple[int, Optional[Route], Optional[Route]]] = None,
    ) -> "RpvpState":
        self._space = space
        self._chunks = chunks
        #: The state this one was derived from via :meth:`with_best` (None for
        #: states built from scratch).
        self.parent = parent
        #: ``(slot, old_route, new_route)`` of the single changed entry.
        self.delta = delta
        self._fp_token = None
        self._fp = 0
        self._hash = None
        self._engine_token = None
        self._engine_cache = None
        self._stability_token = None
        self._stability_cache = None
        return self

    @staticmethod
    def from_dict(best: Dict[str, Optional[Route]]) -> "RpvpState":
        """Build a canonical state from a node -> route mapping."""
        return RpvpState(sorted(best.items(), key=lambda item: item[0]))

    @property
    def assignments(self) -> Tuple[Tuple[str, Optional[Route]], ...]:
        """The (node, route) pairs in node order (materialized on demand)."""
        return tuple(zip(self._space.names, self.routes()))

    def routes(self) -> List[Optional[Route]]:
        """The route vector in node order."""
        flat: List[Optional[Route]] = []
        for chunk in self._chunks:
            flat.extend(chunk)
        return flat

    def items(self) -> Iterable[Tuple[str, Optional[Route]]]:
        """Iterate (node, route) pairs without materializing a tuple."""
        names = iter(self._space.names)
        for chunk in self._chunks:
            for route in chunk:
                yield next(names), route

    def detach(self) -> "RpvpState":
        """Drop the search-time caches once the search is done with this state.

        States handed out of a search — converged states kept in results —
        would otherwise pin their whole DFS ancestor chain in memory, plus
        the exploration's fingerprinter (and through it the intern table and
        Zobrist components) and candidate engine (and through it the protocol
        instance).  The chunked vector is self-contained, so lookups and
        equality are unaffected; future fingerprint/candidate computations
        fall back to a from-scratch evaluation.  Returns self for chaining.
        """
        self.parent = None
        self.delta = None
        self._fp_token = None
        self._fp = 0
        self._engine_token = None
        self._engine_cache = None
        self._stability_token = None
        self._stability_cache = None
        return self

    @property
    def node_names(self) -> Tuple[str, ...]:
        """The sorted node names (shared across states of one instance)."""
        return self._space.names

    def best(self, node: str) -> Optional[Route]:
        """The best route of ``node`` (None = no route, the paper's ⊥)."""
        try:
            slot = self._space.slot_of[node]
        except KeyError:
            raise ProtocolError(f"node {node!r} not part of this RPVP state") from None
        return self._chunks[slot >> _CHUNK_SHIFT][slot & _CHUNK_MASK]

    def as_dict(self) -> Dict[str, Optional[Route]]:
        """A mutable copy of the assignment."""
        return dict(zip(self._space.names, self.routes()))

    def with_best(self, node: str, route: Optional[Route]) -> "RpvpState":
        """A new state with ``node``'s best route replaced.

        Shares every untouched chunk with this state and records the
        single-slot delta for incremental fingerprinting / successor
        generation.
        """
        try:
            slot = self._space.slot_of[node]
        except KeyError:
            raise ProtocolError(f"node {node!r} not part of this RPVP state") from None
        index = slot >> _CHUNK_SHIFT
        offset = slot & _CHUNK_MASK
        chunk = self._chunks[index]
        old = chunk[offset]
        new_chunk = chunk[:offset] + (route,) + chunk[offset + 1 :]
        chunks = self._chunks[:index] + (new_chunk,) + self._chunks[index + 1 :]
        return RpvpState.__new__(RpvpState)._init(
            self._space, chunks, parent=self, delta=(slot, old, route)
        )

    def nodes_with_routes(self) -> List[str]:
        """Nodes that currently hold a route."""
        return [name for name, route in zip(self._space.names, self.routes()) if route is not None]

    def describe(self) -> str:
        """Multi-line human-readable dump used in trails."""
        lines = []
        for name, route in zip(self._space.names, self.routes()):
            lines.append(f"  {name}: {route.describe() if route else '<no route>'}")
        return "\n".join(lines)

    # ------------------------------------------------------------------ hashing
    def fingerprint(self, hasher) -> int:
        """This state's Zobrist fingerprint under ``hasher``.

        ``hasher`` provides ``component(slot, entry) -> int`` (see
        :class:`repro.modelcheck.hashing.ZobristFingerprinter`).  The value is
        the XOR of all per-slot components, computed incrementally from the
        parent's cached fingerprint when this state came out of
        :meth:`with_best` — O(1) amortized during a depth-first search, where
        parents are always fingerprinted before their children.
        """
        if self._fp_token is hasher:
            return self._fp
        # Walk up to the nearest ancestor already fingerprinted by ``hasher``.
        chain: List[RpvpState] = []
        state: Optional[RpvpState] = self
        while (
            state is not None
            and state._fp_token is not hasher
            and state.parent is not None
            and state.delta is not None
        ):
            chain.append(state)
            state = state.parent
        if state is None or state._fp_token is not hasher:
            base = state if state is not None else self
            value = 0
            slot = 0
            for chunk in base._chunks:
                for route in chunk:
                    value ^= hasher.component(slot, route)
                    slot += 1
            base._fp_token = hasher
            base._fp = value
        else:
            value = state._fp
        for derived in reversed(chain):
            slot, old, new = derived.delta  # type: ignore[misc]
            value = hasher.delta(value, slot, old, new)
            derived._fp_token = hasher
            derived._fp = value
        return value

    # ------------------------------------------------------------------ dunder
    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, RpvpState):
            return NotImplemented
        if self._space is not other._space and self._space.names != other._space.names:
            return False
        return self._chunks == other._chunks

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self._space.names, self._chunks))
        return self._hash

    def __repr__(self) -> str:
        decided = sum(1 for route in self.routes() if route is not None)
        return f"RpvpState({decided}/{len(self)} decided)"

    def __reduce__(self):
        return (RpvpState, (self.assignments,))

    def __len__(self) -> int:
        return len(self._space.names)


@dataclass(frozen=True)
class RpvpTransition:
    """One RPVP step: ``node`` adopted ``new_route`` (None = cleared invalid path)."""

    node: str
    new_route: Optional[Route]
    from_peer: Optional[str] = None

    def describe(self) -> str:
        if self.new_route is None:
            return f"{self.node} withdraws its (invalid) best path"
        peer = f" from {self.from_peer}" if self.from_peer else ""
        return f"{self.node} selects {self.new_route.describe()}{peer}"


def initial_state(instance: PathVectorInstance) -> RpvpState:
    """The RPVP initial state: origins hold their own route, others hold ⊥."""
    best: Dict[str, Optional[Route]] = {}
    origin_set = set(instance.origins())
    for node in instance.nodes():
        if node in origin_set:
            best[node] = instance.origin_route(node)  # type: ignore[attr-defined]
        else:
            best[node] = None
    return RpvpState.from_dict(best)


def is_invalid(instance: PathVectorInstance, state: RpvpState, node: str) -> bool:
    """The paper's ``invalid(n)`` predicate.

    A best path is invalid when its next hop no longer backs it: the next hop
    is not a peer any more (e.g. the link failed), or the next hop's current
    best path is not the remainder of the node's path.
    """
    route = state.best(node)
    if route is None or route.path == EPSILON:
        return False
    head = route.path.head
    if head not in instance.peers(node):
        return True
    head_route = state.best(head)
    head_path = head_route.path if head_route is not None else None
    return head_path != route.path.rest


def updating_peers(
    instance: PathVectorInstance,
    state: RpvpState,
    node: str,
    against: Optional[Route] = None,
) -> List[Tuple[str, Route]]:
    """Peers whose current advertisement would improve ``node``'s best path.

    ``against`` overrides the incumbent route (used after an invalidation,
    where the comparison is against ⊥).
    Returns (peer, imported advertisement) pairs.
    """
    incumbent = state.best(node) if against is None else against
    candidates: List[Tuple[str, Route]] = []
    for peer in instance.peers(node):
        advertisement = instance.advertisement(node, peer, state.best(peer))
        if advertisement is None:
            continue
        if instance.better(node, advertisement, incumbent):
            candidates.append((peer, advertisement))
    return candidates


def best_updates(
    instance: PathVectorInstance,
    node: str,
    candidates: Sequence[Tuple[str, Route]],
) -> List[Tuple[str, Route]]:
    """The highest-ranked candidates (the paper's set ``U``); ties all kept."""
    if not candidates:
        return []
    best_key = min(instance.cached_rank(node, route) for _peer, route in candidates)
    return [
        (peer, route)
        for peer, route in candidates
        if instance.cached_rank(node, route) == best_key
    ]


def enabled_nodes(instance: PathVectorInstance, state: RpvpState) -> List[str]:
    """Algorithm 1, line 5: nodes with an invalid path or an improving peer."""
    enabled = []
    for node in instance.nodes():
        if is_invalid(instance, state, node):
            enabled.append(node)
        elif updating_peers(instance, state, node):
            enabled.append(node)
    return enabled


def is_converged(instance: PathVectorInstance, state: RpvpState) -> bool:
    """True when no node is enabled (Algorithm 1, lines 6-8)."""
    return not enabled_nodes(instance, state)


def step_node(
    instance: PathVectorInstance,
    state: RpvpState,
    node: str,
) -> List[Tuple[RpvpTransition, RpvpState]]:
    """All outcomes of executing ``node`` once (Algorithm 1, lines 10-16).

    If the node's path is invalid it is first cleared; then, among the peers
    tied for the best update, each choice produces one successor.  When there
    is no updating peer after an invalidation, the single successor has the
    path cleared.
    """
    working_state = state
    cleared = False
    if is_invalid(instance, state, node):
        working_state = state.with_best(node, None)
        cleared = True
    candidates = updating_peers(instance, working_state, node)
    best = best_updates(instance, node, candidates)
    if not best:
        if cleared:
            return [(RpvpTransition(node=node, new_route=None), working_state)]
        return []
    successors = []
    for peer, route in best:
        transition = RpvpTransition(node=node, new_route=route, from_peer=peer)
        successors.append((transition, working_state.with_best(node, route)))
    return successors


def rpvp_successors(
    instance: PathVectorInstance,
    state: RpvpState,
) -> List[Tuple[RpvpTransition, RpvpState]]:
    """All successors of ``state`` under the unoptimized RPVP semantics."""
    successors: List[Tuple[RpvpTransition, RpvpState]] = []
    for node in enabled_nodes(instance, state):
        successors.extend(step_node(instance, state, node))
    return successors


def run_to_convergence(
    instance: PathVectorInstance,
    state: Optional[RpvpState] = None,
    choose: Optional[Callable[[List[Tuple[RpvpTransition, RpvpState]]], int]] = None,
    max_steps: int = 1_000_000,
) -> Tuple[RpvpState, List[RpvpTransition]]:
    """Execute one RPVP path to convergence (a simulation, not a search).

    ``choose`` picks among the available successors (default: the first one,
    i.e. a deterministic simulation in the style of Batfish).  Raises
    :class:`ProtocolError` when ``max_steps`` is exceeded, which can happen
    for genuinely divergent configurations.
    """
    current = state if state is not None else initial_state(instance)
    history: List[RpvpTransition] = []
    for _ in range(max_steps):
        successors = rpvp_successors(instance, current)
        if not successors:
            return current, history
        index = choose(successors) if choose is not None else 0
        transition, current = successors[index]
        history.append(transition)
    raise ProtocolError(
        f"RPVP did not converge within {max_steps} steps for {instance.name}"
    )


def forwarding_next_hops(state: RpvpState) -> Dict[str, Optional[str]]:
    """The next hop each node forwards to in ``state`` (None = no route)."""
    result: Dict[str, Optional[str]] = {}
    for node, route in state.items():
        if route is None:
            result[node] = None
        elif route.path == EPSILON:
            result[node] = node  # the origin delivers locally
        else:
            result[node] = route.path.head
    return result
