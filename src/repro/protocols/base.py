"""Common abstractions for the path-vector protocol models.

The paper models every routing protocol as an instance of the (extended)
Stable Paths Problem: each node holds a *best path* towards the origin(s) of
the prefix under analysis, and import/export filters plus a ranking function —
all inferred from the configuration — govern which advertisements are
accepted and preferred (§3.4, Appendix A/B).

This module defines:

* :class:`Path` — an immutable sequence of node names from the next hop to an
  origin.  The empty path ``EPSILON`` is the path an origin has to itself;
  ``NO_PATH`` (``None`` in the protocol state) means "no route".
* :class:`Route` — a path together with the BGP-style attributes the ranking
  functions consult (local preference, AS-path length, MED, IGP cost, ...).
* :class:`PathVectorInstance` — the abstract protocol interface consumed by
  the RPVP/SPVP engines and by the model checker.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple


class Path(tuple):
    """A forwarding path: node names from the next hop to the origin.

    An origin's own path is the empty tuple (``EPSILON``).  For any other
    node, ``path[0]`` is the next hop (``head`` in the paper's notation) and
    ``path[1:]`` is ``rest`` — which in a converged state must equal the next
    hop's own best path (otherwise the path is *invalid*, §3.4.2).
    """

    __slots__ = ()

    def __new__(cls, nodes: Iterable[str] = ()) -> "Path":
        return super().__new__(cls, tuple(nodes))

    @property
    def head(self) -> Optional[str]:
        """The next hop, or None for the empty path."""
        return self[0] if self else None

    @property
    def rest(self) -> "Path":
        """The path with the next hop removed."""
        return Path(self[1:])

    @property
    def origin(self) -> Optional[str]:
        """The final node on the path (the origin), or None if empty."""
        return self[-1] if self else None

    def prepend(self, node: str) -> "Path":
        """The path seen by a neighbour importing this path via ``node``."""
        return tuple.__new__(Path, (node,) + self)

    def contains(self, node: str) -> bool:
        """True if ``node`` already appears on the path (loop detection)."""
        return node in self

    def __repr__(self) -> str:
        return "Path(" + " -> ".join(self) + ")" if self else "Path(<origin>)"


#: The origin's path to itself.
EPSILON = Path(())

#: Sentinel meaning "no route" (the paper's ⊥).  Kept as ``None`` so protocol
#: state dictionaries stay small and hash quickly.
NO_PATH = None


class RouteSource(enum.IntEnum):
    """Which protocol produced a route; doubles as administrative distance order."""

    CONNECTED = 0
    STATIC = 1
    EBGP = 20
    OSPF = 110
    IBGP = 200

    @property
    def administrative_distance(self) -> int:
        """The conventional administrative distance of this source."""
        return int(self.value)


@dataclass(frozen=True)
class Route:
    """A candidate route: a path plus the attributes ranking functions consult.

    ``Route`` objects are immutable and hashable so the model checker can
    intern them (the paper's "state hashing" optimization, §4.4).
    """

    path: Path
    source: RouteSource = RouteSource.EBGP
    local_pref: int = 100
    as_path_length: int = 0
    med: int = 0
    igp_cost: int = 0
    communities: FrozenSet[str] = frozenset()
    origin_node: Optional[str] = None

    @property
    def compare_key(self) -> Tuple:
        """All equality-relevant fields as one tuple, computed once.

        Routes are compared and hashed constantly — interning, advertisement
        and rank memo lookups all key on them — and the dataclass-generated
        ``__eq__``/``__hash__`` re-tuple all eight fields on every call.
        """
        key = self.__dict__.get("_key")
        if key is None:
            key = (
                self.path,
                self.source,
                self.local_pref,
                self.as_path_length,
                self.med,
                self.igp_cost,
                self.communities,
                self.origin_node,
            )
            object.__setattr__(self, "_key", key)
        return key

    def __eq__(self, other) -> bool:
        if other is self:
            return True
        if other.__class__ is not Route:
            return NotImplemented
        return self.compare_key == other.compare_key

    def __hash__(self) -> int:
        """Structural hash over :attr:`compare_key`, computed once and cached."""
        value = self.__dict__.get("_hash")
        if value is None:
            value = hash(self.compare_key)
            object.__setattr__(self, "_hash", value)
        return value

    def __getstate__(self):
        # The cached hash is process-specific (string hashing is seeded), so
        # it must not travel across the pickle boundary to pool workers; the
        # cached compare key would just duplicate the fields on the wire.
        state = dict(self.__dict__)
        state.pop("_hash", None)
        state.pop("_key", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)

    @property
    def next_hop(self) -> Optional[str]:
        """The next hop of the route (None for a locally originated route)."""
        return self.path.head

    def with_path(self, path: Path) -> "Route":
        """A copy of this route with a different path.

        Constructed by copying the field dict rather than via
        :func:`dataclasses.replace` — replace() rebuilds a field mapping per
        call and sits on the export hot path of every protocol.  The cached
        hash/compare-key entries must not travel to the copy.
        """
        fields = dict(self.__dict__)
        fields.pop("_hash", None)
        fields.pop("_key", None)
        fields["path"] = path
        route = object.__new__(Route)
        object.__setattr__(route, "__dict__", fields)
        return route

    def describe(self) -> str:
        """Compact human-readable form used in trails and logs."""
        path_text = "->".join(self.path) if self.path else "<origin>"
        return (
            f"{path_text} (lp={self.local_pref}, aspath={self.as_path_length}, "
            f"med={self.med}, igp={self.igp_cost}, src={self.source.name})"
        )


def origin_route(node: str, source: RouteSource = RouteSource.EBGP) -> Route:
    """The route an origin node has for its own prefix (path ``EPSILON``)."""
    return Route(path=EPSILON, source=source, origin_node=node, as_path_length=0)


class PathVectorInstance(abc.ABC):
    """Abstract protocol instance explored by RPVP / SPVP.

    One instance corresponds to the execution of the control plane for a
    single prefix (paper §3.3 executes the control plane per prefix within a
    PEC).  The interface mirrors the paper's formalism: peers, import/export
    filters and a ranking function, plus the set of origins.
    """

    #: Name of the prefix / instance, used in diagnostics.
    name: str = "instance"

    @abc.abstractmethod
    def nodes(self) -> Sequence[str]:
        """All nodes participating in this protocol instance."""

    @abc.abstractmethod
    def origins(self) -> Sequence[str]:
        """Nodes that originate the prefix (best path ``EPSILON`` initially)."""

    @abc.abstractmethod
    def peers(self, node: str) -> Sequence[str]:
        """The peers of ``node`` under the instance's failure scenario."""

    @abc.abstractmethod
    def export(self, exporter: str, importer: str, route: Optional[Route]) -> Optional[Route]:
        """Apply ``exporter``'s export filter towards ``importer``.

        Returns the advertised route (path already prepended with
        ``exporter``) or ``None`` when the filter rejects it.
        """

    @abc.abstractmethod
    def import_(self, importer: str, exporter: str, route: Optional[Route]) -> Optional[Route]:
        """Apply ``importer``'s import filter on an advertisement from ``exporter``."""

    @abc.abstractmethod
    def rank(self, node: str, route: Route) -> Tuple:
        """A sort key for ``route`` at ``node``; lower keys are preferred.

        Ties (equal keys) model the paper's partial-order ranking functions:
        the RPVP engine treats tied candidates as a non-deterministic choice.
        """

    # ------------------------------------------------------------------ defaults
    def cached_rank(self, node: str, route: Route) -> Tuple:
        """Memoised :meth:`rank` (ranking is pure in (node, route))."""
        cache = getattr(self, "_rank_cache", None)
        if cache is None:
            cache = {}
            self._rank_cache = cache  # type: ignore[attr-defined]
        key = (node, route)
        if key not in cache:
            cache[key] = self.rank(node, route)
        return cache[key]

    def better(self, node: str, candidate: Route, incumbent: Optional[Route]) -> bool:
        """True when ``candidate`` is strictly preferred over ``incumbent``."""
        if incumbent is None:
            return True
        return self.cached_rank(node, candidate) < self.cached_rank(node, incumbent)

    def tied(self, node: str, a: Route, b: Route) -> bool:
        """True when the ranking function does not order ``a`` and ``b``."""
        return self.cached_rank(node, a) == self.cached_rank(node, b)

    def cached_export(self, exporter: str, importer: str, route: Optional[Route]) -> Optional[Route]:
        """Memoised :meth:`export` (filters are pure in their arguments).

        The SPVP stepper re-advertises the same best path across a very large
        number of interleavings; route-map evaluation only needs to happen
        once per (exporter, importer, route).
        """
        cache = getattr(self, "_export_cache", None)
        if cache is None:
            cache = {}
            self._export_cache = cache  # type: ignore[attr-defined]
        key = (exporter, importer, route)
        if key not in cache:
            cache[key] = self.export(exporter, importer, route)
        return cache[key]

    def cached_import(self, importer: str, exporter: str, route: Optional[Route]) -> Optional[Route]:
        """Memoised :meth:`import_` (filters are pure in their arguments)."""
        cache = getattr(self, "_import_cache", None)
        if cache is None:
            cache = {}
            self._import_cache = cache  # type: ignore[attr-defined]
        key = (importer, exporter, route)
        if key not in cache:
            cache[key] = self.import_(importer, exporter, route)
        return cache[key]

    def advertisement(self, importer: str, exporter: str, route: Optional[Route]) -> Optional[Route]:
        """The advertisement ``importer`` would accept from ``exporter`` now.

        This is the composition ``import(export(best(exporter)))`` used in the
        paper's ``can-update`` predicate.  Loops are rejected here as well
        (assumption in Appendix B: import filters reject looping paths).

        Results are memoised per (importer, exporter, route): the model
        checker evaluates the same advertisements across a very large number
        of states, and filters/ranking depend only on these arguments.
        """
        cache = getattr(self, "_advertisement_cache", None)
        if cache is None:
            cache = {}
            self._advertisement_cache = cache  # type: ignore[attr-defined]
        key = (importer, exporter, route)
        if key in cache:
            return cache[key]
        exported = self.export(exporter, importer, route)
        if exported is None or exported.path.contains(importer):
            result = None
        else:
            result = self.import_(importer, exporter, exported)
        cache[key] = result
        return result

    def multipath_allowed(self, node: str) -> bool:
        """Whether ``node`` may keep several equally-ranked best paths.

        The paper allows this only for shortest-path protocols (OSPF ECMP).
        """
        return False

    def session_rank_bound(self, importer: str, exporter: str) -> Optional[Tuple]:
        """A static lower bound on the rank of any route importable over a session.

        Returns a rank tuple ``b`` such that every route ``importer`` could
        *ever* accept from ``exporter`` in this instance ranks no better than
        ``b`` (``cached_rank(importer, r) >= b`` for all importable ``r``),
        or ``None`` when no bound is known.  The partial-order reduction uses
        this to prove a session *rank-immune*: if the bound cannot outrank the
        receiver's current best route, future deliveries over the session can
        never change that best (Appendix A keeps the incumbent on ties).

        The default knows nothing; BGP instances derive a bound from the
        local-pref / AS-hop analysis in :mod:`repro.core.determinism`.
        """
        return None
