"""Dense-id interning of routes and channel queues (the array-native core).

Plankton's scaling argument (NSDI '20, §5) is that explicit-state search over
control planes is only tractable when a state is cheap to copy, compare and
hash.  The persistent chunked vectors from earlier PRs made copies cheap;
equality and hashing, however, still walked boxed :class:`Route` objects slot
by slot.  This module removes the boxes: a :class:`RouteInternTable` assigns
every distinct route (and every distinct channel queue) a small dense integer
id, so protocol states can store flat ``array('i')`` blocks whose equality is
a memcmp and whose hash is ``hash(bytes)``.

One table is shared per state space (per PEC instance family): every
:class:`~repro.protocols.rpvp.RpvpState` over the same node set, and every
:class:`~repro.protocols.spvp.SpvpState` over the same instance, resolve ids
through the same table, which is what makes cross-state id comparison sound.

Id spaces:

* **route ids** — ``0`` is reserved for ``None`` (no route).  Ids are handed
  out in first-seen order and never recycled.
* **queue ids** — ``0`` is reserved for the empty queue.  A queue is interned
  as the tuple of the route ids of its messages, so two buffers with equal
  message sequences always share an id.

The two id spaces overlap numerically; callers disambiguate by slot kind
(best/rib slots hold route ids, channel slots hold queue ids), which is also
why Zobrist components are keyed on ``(slot, id)`` pairs.

Alongside each route id the table precomputes the id of the route's *path*:
SPVP's re-advertisement rule fires on path changes only (route attributes are
a function of the path for a fixed instance), so "did the best path change?"
becomes an integer comparison.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.protocols.base import Path, Route

__all__ = ["RouteInternTable"]


class RouteInternTable:
    """Bidirectional ``Optional[Route] <-> int`` (and queue) intern table."""

    __slots__ = (
        "_route_ids",
        "_routes",
        "_route_path_ids",
        "_path_ids",
        "_queue_ids",
        "_queues",
        "__weakref__",
    )

    def __init__(self) -> None:
        # Route id 0 is always "no route".
        self._route_ids: Dict[Optional[Route], int] = {None: 0}
        self._routes: List[Optional[Route]] = [None]
        # _route_path_ids[rid] is the id of _routes[rid].path (0 for None).
        self._route_path_ids: List[int] = [0]
        self._path_ids: Dict[Optional[Path], int] = {None: 0}
        # Queue id 0 is always the empty queue.
        self._queue_ids: Dict[Tuple[int, ...], int] = {(): 0}
        self._queues: List[Tuple[int, ...]] = [()]

    # -- route ids ---------------------------------------------------------

    def route_id(self, route: Optional[Route]) -> int:
        """Intern ``route`` (or ``None``) and return its dense id."""
        ids = self._route_ids
        rid = ids.get(route)
        if rid is None:
            rid = len(self._routes)
            ids[route] = rid
            self._routes.append(route)
            path_ids = self._path_ids
            path = route.path
            pid = path_ids.get(path)
            if pid is None:
                pid = len(path_ids)
                path_ids[path] = pid
            self._route_path_ids.append(pid)
        return rid

    def route(self, rid: int) -> Optional[Route]:
        """The route behind ``rid`` (``None`` for id 0)."""
        return self._routes[rid]

    def path_id(self, rid: int) -> int:
        """The id of ``route(rid).path`` — equal ids iff equal paths."""
        return self._route_path_ids[rid]

    # -- queue ids ---------------------------------------------------------

    def queue_id(self, route_ids: Tuple[int, ...]) -> int:
        """Intern a channel queue given as a tuple of route ids."""
        ids = self._queue_ids
        qid = ids.get(route_ids)
        if qid is None:
            qid = len(self._queues)
            ids[route_ids] = qid
            self._queues.append(route_ids)
        return qid

    def queue(self, qid: int) -> Tuple[int, ...]:
        """The interned queue behind ``qid`` as a tuple of route ids."""
        return self._queues[qid]

    # -- generic entry point (duck-compatible with StateInterner.intern) ---

    def intern(self, entry) -> int:
        """Intern an arbitrary state-slot value.

        Routes (and ``None``) go to the route-id space; tuples are treated
        as message queues of routes and go to the queue-id space.  This is
        the hook :class:`~repro.modelcheck.hashing.ZobristFingerprinter`
        uses when it is bound to a table but handed an object.
        """
        if entry is None or isinstance(entry, Route):
            return self.route_id(entry)
        if isinstance(entry, tuple):
            return self.queue_id(tuple(self.route_id(route) for route in entry))
        raise TypeError(f"cannot intern {type(entry).__name__} entries")

    # -- accounting --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._routes)

    def unique_entries(self) -> int:
        return len(self._routes) + len(self._queues)

    def approximate_bytes(self) -> int:
        # Dict slot + list slot + id box per interned entry, same cost model
        # as StateInterner.approximate_bytes.
        return (len(self._routes) + len(self._queues) + len(self._path_ids)) * 24
