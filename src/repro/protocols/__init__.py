"""Protocol substrate: OSPF, BGP, static routing, SPVP and RPVP models."""

from repro.protocols.base import (
    EPSILON,
    NO_PATH,
    Path,
    Route,
    RouteSource,
    PathVectorInstance,
)
from repro.protocols.filters import apply_route_map, RouteMapResult
from repro.protocols.ospf import OspfComputation, OspfRoutingTable
from repro.protocols.static import resolve_static_routes, StaticResolution
from repro.protocols.bgp import BgpInstance, build_bgp_instance
from repro.protocols.ospf_instance import OspfInstance, build_ospf_instance
from repro.protocols.rpvp import (
    RpvpState,
    enabled_nodes,
    is_converged,
    rpvp_successors,
    run_to_convergence,
)
from repro.protocols.spvp import (
    ReferenceSpvpSimulator,
    SpvpEvent,
    SpvpSimulator,
    SpvpState,
    SpvpStepper,
)

__all__ = [
    "EPSILON",
    "NO_PATH",
    "Path",
    "Route",
    "RouteSource",
    "PathVectorInstance",
    "apply_route_map",
    "RouteMapResult",
    "OspfComputation",
    "OspfRoutingTable",
    "resolve_static_routes",
    "StaticResolution",
    "BgpInstance",
    "build_bgp_instance",
    "OspfInstance",
    "build_ospf_instance",
    "RpvpState",
    "enabled_nodes",
    "is_converged",
    "rpvp_successors",
    "run_to_convergence",
    "ReferenceSpvpSimulator",
    "SpvpSimulator",
    "SpvpState",
    "SpvpStepper",
    "SpvpEvent",
]
