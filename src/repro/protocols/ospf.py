"""OSPF shortest-path computation.

OSPF is deterministic: given a topology, link costs and the set of origins of
a prefix, the converged state is a shortest-path DAG toward the closest
origin, with ECMP when several neighbours lie on equal-cost shortest paths.

Two consumers use this module:

* the OSPF :class:`~repro.protocols.ospf_instance.OspfInstance` path-vector
  model, whose deterministic-node detection heuristic (paper §4.1.2: "picks
  each node only after all nodes with shorter paths have executed") needs the
  network-wide distance computation, cached per (topology, failures, origins);
* the FIB builder, which needs per-node next hops for redistributed and
  directly computed OSPF routes.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.config.objects import NetworkConfig, DEFAULT_OSPF_COST
from repro.netaddr import Prefix
from repro.topology import Topology

INFINITY = float("inf")


@dataclass(frozen=True)
class OspfRoutingTable:
    """Result of an OSPF computation for one prefix.

    Attributes:
        distances: Cost of the best path from each node to its closest origin
            (absent when unreachable).
        next_hops: For each node, the sorted tuple of ECMP next hops on
            shortest paths (empty for origins and unreachable nodes).
        chosen_origin: The origin each node routes towards.
        deterministic_order: Nodes sorted by increasing distance — the order
            in which the deterministic-node POR heuristic lets them execute.
    """

    distances: Dict[str, float]
    next_hops: Dict[str, Tuple[str, ...]]
    chosen_origin: Dict[str, str]
    deterministic_order: Tuple[str, ...]

    def is_reachable(self, node: str) -> bool:
        """True if ``node`` has a finite-cost route to some origin."""
        return self.distances.get(node, INFINITY) < INFINITY


class OspfComputation:
    """Cached OSPF shortest-path computations.

    The cache key is (origins, failed links), matching the paper: "We cache
    this computation so it is only run once for a given topology, set of
    failures, and set of sources."
    """

    def __init__(self, network: NetworkConfig) -> None:
        self.network = network
        self.topology = network.topology
        self._cache: Dict[Tuple[FrozenSet[str], FrozenSet[int]], OspfRoutingTable] = {}
        self._filter_caches: Dict[FrozenSet[int], Dict[str, Dict]] = {}

    def shared_filter_caches(self, failure_key: FrozenSet[int]) -> Dict[str, Dict]:
        """Filter/rank memo dicts shared by all instances of one failure set.

        OSPF export, import and ranking depend on the topology, the link
        costs and the failed links — never on the prefix — so the per-prefix
        :class:`~repro.protocols.ospf_instance.OspfInstance` objects built
        over this computation can share one set of
        :class:`~repro.protocols.base.PathVectorInstance` memo dicts instead
        of re-evaluating the identical filters per PEC.
        """
        caches = self._filter_caches.get(failure_key)
        if caches is None:
            caches = {
                "export": {},
                "import": {},
                "advertisement": {},
                "rank": {},
                "edge_cost": {},
                # Id-keyed memos adopted by the RPVP CandidateEngine (one
                # engine per prefix, all over the shared intern table).
                "adv_edge": {},
                "rank_at": {},
            }
            self._filter_caches[failure_key] = caches
        return caches

    # ------------------------------------------------------------------ costs
    def link_cost(self, node: str, neighbor: str, link_weight: int) -> float:
        """The OSPF cost of the edge ``node -> neighbor``.

        Interface cost overrides in the device config win over the topology
        weight; a passive interface means no adjacency (infinite cost).
        """
        config = self.network.device(node).ospf
        if config is None:
            return INFINITY
        if config.is_passive(neighbor):
            return INFINITY
        return config.cost_to(neighbor, link_weight)

    def _runs_ospf(self, node: str) -> bool:
        return self.network.device(node).ospf is not None

    # ------------------------------------------------------------------ SPF
    def compute(
        self,
        origins: Sequence[str],
        failed_links: Optional[Set[int]] = None,
    ) -> OspfRoutingTable:
        """Multi-source Dijkstra from ``origins`` over the OSPF-speaking subgraph.

        The computation follows reverse link costs (cost of the edge leaving
        the node towards the origin side), so ``distances[n]`` is the cost of
        the best n -> origin path, exactly what each router's SPF run yields.
        """
        key = (frozenset(origins), frozenset(failed_links or ()))
        cached = self._cache.get(key)
        if cached is not None:
            return cached

        distances: Dict[str, float] = {}
        chosen_origin: Dict[str, str] = {}
        heap: List[Tuple[float, str, str]] = []
        for origin in origins:
            if not self._runs_ospf(origin):
                continue
            distances[origin] = 0.0
            chosen_origin[origin] = origin
            heapq.heappush(heap, (0.0, origin, origin))

        settled: Set[str] = set()
        while heap:
            dist, node, origin = heapq.heappop(heap)
            if node in settled:
                continue
            settled.add(node)
            for link in self.topology.edges(node, failed_links):
                neighbor = link.other(node)
                if not self._runs_ospf(neighbor):
                    continue
                # An adjacency requires neither side to be passive.
                if self.network.device(node).ospf.is_passive(neighbor):
                    continue
                # Cost of neighbor -> node edge, as seen by the neighbour.
                cost = self.link_cost(neighbor, node, link.weight_from(neighbor))
                if cost == INFINITY:
                    continue
                candidate = dist + cost
                best = distances.get(neighbor, INFINITY)
                if candidate < best:
                    distances[neighbor] = candidate
                    chosen_origin[neighbor] = origin
                    heapq.heappush(heap, (candidate, neighbor, origin))
                elif candidate == best and origin < chosen_origin.get(neighbor, origin):
                    # Deterministic tie-break between equally distant origins.
                    chosen_origin[neighbor] = origin
                    heapq.heappush(heap, (candidate, neighbor, origin))

        next_hops: Dict[str, Tuple[str, ...]] = {}
        origin_set = {o for o in origins if self._runs_ospf(o)}
        for node, dist in distances.items():
            if node in origin_set:
                next_hops[node] = ()
                continue
            hops = []
            for link in self.topology.edges(node, failed_links):
                neighbor = link.other(node)
                if neighbor not in distances or not self._runs_ospf(neighbor):
                    continue
                if self.network.device(neighbor).ospf.is_passive(node):
                    continue
                cost = self.link_cost(node, neighbor, link.weight_from(node))
                if cost == INFINITY:
                    continue
                if distances[neighbor] + cost == dist:
                    hops.append(neighbor)
            next_hops[node] = tuple(sorted(set(hops)))

        order = tuple(sorted(distances, key=lambda n: (distances[n], n)))
        table = OspfRoutingTable(
            distances=distances,
            next_hops=next_hops,
            chosen_origin=chosen_origin,
            deterministic_order=order,
        )
        self._cache[key] = table
        return table

    def igp_cost_between(
        self,
        source: str,
        target: str,
        failed_links: Optional[Set[int]] = None,
    ) -> float:
        """The IGP cost from ``source`` to ``target`` (used by BGP ranking)."""
        table = self.compute([target], failed_links)
        return table.distances.get(source, INFINITY)

    def shortest_path(
        self,
        source: str,
        origins: Sequence[str],
        failed_links: Optional[Set[int]] = None,
    ) -> Optional[List[str]]:
        """One shortest path (node list, source first) or None if unreachable."""
        table = self.compute(origins, failed_links)
        if not table.is_reachable(source):
            return None
        path = [source]
        current = source
        visited = {source}
        while table.next_hops.get(current):
            current = table.next_hops[current][0]
            if current in visited:
                return None
            visited.add(current)
            path.append(current)
        return path

    def clear_cache(self) -> None:
        """Drop all cached SPF results (used when configs are mutated)."""
        self._cache.clear()
