"""Extended SPVP: the message-passing reference model (paper Appendix A).

SPVP is the faithful abstraction of real BGP message exchange: every node
keeps a ``rib-in`` per peer, peers exchange advertisements over reliable FIFO
buffers, and a node that changes its best path re-advertises it.  Plankton
does *not* model check SPVP — it checks RPVP, which Theorem 1 proves reaches
the same converged states — but SPVP is implemented here for three reasons:

* the soundness/completeness relationship between the two models is validated
  experimentally by the test suite (every SPVP converged state is also found
  by the RPVP search, and vice versa, on the paper's example gadgets);
* the Batfish-style simulation baseline (`repro.baselines.simulation`) is one
  arbitrary SPVP execution, which is exactly how simulation misses violations
  that only some orderings expose (BGP wedgies);
* divergent configurations (BAD GADGET) can be demonstrated on it.

The state lives in :class:`SpvpState`, an immutable array-native vector
mirroring :class:`repro.protocols.rpvp.RpvpState`'s backbone design: one
shared slot layout per instance (:class:`_SpvpSpace`) owning a
:class:`~repro.protocols.interning.RouteInternTable`, values stored as one
flat ``array('i')`` of intern ids (route ids in best/rib slots, queue ids in
channel slots), each derived state remembering its parent and the slot/id
deltas it applied.  Equality between states of one instance is an integer
array compare; the visited-set fingerprint is an O(changed-slots) Zobrist
XOR over ``(slot, id)`` components.  :class:`SpvpStepper` is the stateless
transition function over those states, generating successors through
id-keyed import/export/rank memos; :class:`SpvpSimulator` is a thin mutable
wrapper (current state + RNG + history) that keeps the historic simulation
API.  :class:`ReferenceSpvpSimulator` is the original dict/deque
implementation, kept verbatim as the oracle for the property tests and as
the deepcopy baseline the transient-exploration benchmark measures against.
"""

from __future__ import annotations

import random
from array import array
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.exceptions import ProtocolError
from repro.protocols.base import EPSILON, Path, PathVectorInstance, Route
from repro.protocols.interning import RouteInternTable
from repro.protocols.rpvp import RpvpState


@dataclass(frozen=True)
class SpvpEvent:
    """One SPVP step: ``node`` processed an advertisement from ``peer``."""

    node: str
    peer: str
    advertised: Optional[Route]
    new_best: Optional[Route]

    def describe(self) -> str:
        adv = self.advertised.describe() if self.advertised else "withdraw"
        best = self.new_best.describe() if self.new_best else "<no route>"
        return f"{self.node} processed {adv} from {self.peer}; best is now {best}"


#: A directed message channel: (sender, receiver).
Channel = Tuple[str, str]


class _SpvpSpace:
    """The shared slot layout of all SPVP states over one protocol instance.

    Every state of one instance assigns values to the same slots, so the slot
    numbering (and the per-node peer/slot adjacency the stepper needs) lives
    here exactly once:

    * slots ``[0, len(nodes))`` — per-node best route;
    * the next block — per-(node, peer) rib-in entry;
    * the final block, from :attr:`buffer_base` — per-(sender, receiver)
      channel FIFO, stored as the intern id of the queued-advertisement tuple.

    The space also owns the :class:`RouteInternTable` that maps every route
    (and channel queue) appearing in any state of the instance to a dense
    integer id; states store only those ids, in a flat C int array.

    Rib and channel slots are laid out in ``for node in nodes(): for peer in
    peers(node)`` order — the insertion order of the original dict-based
    simulator — so channel enumeration (and with it seeded simulations and
    exploration order) is unchanged by the representation.
    """

    __slots__ = (
        "nodes",
        "origin_set",
        "best_slot",
        "rib_slot",
        "channels",
        "channel_slot",
        "rib_slots_of",
        "out_slots_of",
        "in_peers",
        "out_peers",
        "buffer_base",
        "total_slots",
        "table",
    )

    def __init__(self, instance: PathVectorInstance) -> None:
        self.table = RouteInternTable()
        self.nodes: Tuple[str, ...] = tuple(instance.nodes())
        self.origin_set: FrozenSet[str] = frozenset(instance.origins())
        self.best_slot: Dict[str, int] = {
            node: slot for slot, node in enumerate(self.nodes)
        }
        self.rib_slot: Dict[Tuple[str, str], int] = {}
        self.channels: List[Channel] = []
        self.channel_slot: Dict[Channel, int] = {}
        next_slot = len(self.nodes)
        for node in self.nodes:
            for peer in instance.peers(node):
                self.rib_slot[(node, peer)] = next_slot
                next_slot += 1
        self.buffer_base = next_slot
        for node in self.nodes:
            for peer in instance.peers(node):
                channel = (peer, node)
                self.channels.append(channel)
                self.channel_slot[channel] = next_slot
                next_slot += 1
        self.total_slots = next_slot
        #: (peer, rib slot) pairs of each node, in peers() order — the
        #: candidate enumeration order of best-path selection.
        self.rib_slots_of: Dict[str, Tuple[Tuple[str, int], ...]] = {
            node: tuple(
                (peer, self.rib_slot[(node, peer)]) for peer in instance.peers(node)
            )
            for node in self.nodes
        }
        #: (peer, channel, channel slot) triples of each node's outgoing
        #: channels, in peers() order — the re-advertisement fan-out.
        self.out_slots_of: Dict[str, Tuple[Tuple[str, Channel, int], ...]] = {
            node: tuple(
                (peer, (node, peer), self.channel_slot[(node, peer)])
                for peer in instance.peers(node)
            )
            for node in self.nodes
        }
        #: Channel adjacency, in canonical slot order: who each node can
        #: message (``out_peers``) and be messaged by (``in_peers``).  The
        #: partial-order-reduction machinery reasons over these.
        self.out_peers: Dict[str, Tuple[str, ...]] = {
            node: tuple(peer for peer, _channel, _slot in self.out_slots_of[node])
            for node in self.nodes
        }
        in_peers: Dict[str, List[str]] = {node: [] for node in self.nodes}
        for sender, receiver in self.channels:
            in_peers[receiver].append(sender)
        self.in_peers: Dict[str, Tuple[str, ...]] = {
            node: tuple(senders) for node, senders in in_peers.items()
        }


def _space_for(instance: PathVectorInstance) -> _SpvpSpace:
    """The (memoised) slot layout of ``instance``."""
    space = getattr(instance, "_spvp_space", None)
    if space is None:
        space = _SpvpSpace(instance)
        instance._spvp_space = space  # type: ignore[attr-defined]
    return space


#: Public name for the memoised slot layout: the partial-order-reduction
#: subsystem (repro.modelcheck.por) derives its channel adjacency from it.
space_for = _space_for


class SpvpState:
    """An immutable SPVP network state: best routes, rib-ins, FIFO buffers.

    The state proper is one flat ``array('i')`` of intern ids over the
    instance's shared :class:`_SpvpSpace`: best/rib-in slots hold route ids,
    channel slots hold queue ids (id 0 is None / the empty queue).  Equality
    between states of one instance is therefore a C-level integer array
    compare and hashing never touches a route.  A delivery touches a handful
    of slots (the drained channel, the receiver's rib-in and best, and — on a
    best-path change — the receiver's outgoing channels); a derived state
    copies the id array and records the ``(slot, old_id, new_id)`` deltas,
    which makes its Zobrist visited-set fingerprint an O(changed-slots) XOR
    off its parent's instead of a full-state hash.  Each derived state also
    keeps its parent and the :class:`SpvpEvent` that produced it, so
    explorers reconstruct witness event sequences from the parent chain
    instead of copying histories.

    Fingerprints key on *paths* (route attributes are a deterministic
    function of the path for a fixed instance), matching the visited-set
    signature the pre-refactor explorer used; equality compares full routes
    (which for one shared intern table is exactly the id compare).
    """

    __slots__ = (
        "_space",
        "_ids",
        "parent",
        "delta",
        "event",
        "pending",
        "_fp_token",
        "_fp",
        "_hash",
    )

    def _init(
        self,
        space: _SpvpSpace,
        ids: array,
        pending: FrozenSet[Channel],
        parent: Optional["SpvpState"] = None,
        delta: Tuple[Tuple[int, int, int], ...] = (),
        event: Optional[SpvpEvent] = None,
    ) -> "SpvpState":
        self._space = space
        self._ids = ids
        #: Channels with at least one queued advertisement (delta-maintained:
        #: one delivery removes at most the drained channel and adds the
        #: receiver's out-channels; no buffer rescan ever happens).
        self.pending = pending
        #: The state this one was derived from (None for roots).
        self.parent = parent
        #: ``(slot, old_id, new_id)`` triples of the changed slots.
        self.delta = delta
        #: The delivery that produced this state from its parent.
        self.event = event
        self._fp_token = None
        self._fp = 0
        self._hash = None
        return self

    # ------------------------------------------------------------------ access
    def best_of(self, node: str) -> Optional[Route]:
        """The current best route of ``node`` (None = the paper's ⊥)."""
        try:
            slot = self._space.best_slot[node]
        except KeyError:
            raise ProtocolError(f"node {node!r} not part of this SPVP state") from None
        return self._space.table.route(self._ids[slot])

    def rib_in_of(self, node: str, peer: str) -> Optional[Route]:
        """The rib-in entry ``node`` holds for ``peer``."""
        try:
            slot = self._space.rib_slot[(node, peer)]
        except KeyError:
            raise ProtocolError(
                f"({node!r}, {peer!r}) is not a session of this SPVP state"
            ) from None
        return self._space.table.route(self._ids[slot])

    def buffer_of(self, channel: Channel) -> Tuple[Optional[Route], ...]:
        """The queued advertisements of ``channel``, oldest first."""
        try:
            slot = self._space.channel_slot[channel]
        except KeyError:
            raise ProtocolError(f"channel {channel!r} not part of this SPVP state") from None
        table = self._space.table
        return tuple(table.route(rid) for rid in table.queue(self._ids[slot]))

    def best_map(self) -> Dict[str, Optional[Route]]:
        """The node -> best route assignment as a mutable dict."""
        table = self._space.table
        ids = self._ids
        return {
            node: table.route(ids[slot])
            for node, slot in self._space.best_slot.items()
        }

    def rib_in_map(self) -> Dict[Tuple[str, str], Optional[Route]]:
        """The (node, peer) -> rib-in assignment as a mutable dict."""
        table = self._space.table
        ids = self._ids
        return {
            key: table.route(ids[slot]) for key, slot in self._space.rib_slot.items()
        }

    def buffer_map(self) -> Dict[Channel, Tuple[Optional[Route], ...]]:
        """The channel -> queued advertisements map (tuples, oldest first)."""
        return {channel: self.buffer_of(channel) for channel in self._space.channels}

    def pending_channels(self) -> List[Channel]:
        """Pending channels in the canonical (slot) enumeration order."""
        if not self.pending:
            return []
        slot_of = self._space.channel_slot
        return sorted(self.pending, key=slot_of.__getitem__)

    def is_converged(self) -> bool:
        """True when every buffer is empty (the SPVP convergence condition)."""
        return not self.pending

    def converged_rpvp(self) -> RpvpState:
        """The current best-path assignment as an :class:`RpvpState`."""
        return RpvpState.from_dict(self.best_map())

    def witness_events(self) -> List[SpvpEvent]:
        """The delivery sequence from the root to this state (parent chain)."""
        events: List[SpvpEvent] = []
        state: Optional[SpvpState] = self
        while state is not None:
            if state.event is not None:
                events.append(state.event)
            state = state.parent
        events.reverse()
        return events

    # ------------------------------------------------------------------ derive
    def _derive(
        self,
        updates: List[Tuple[int, int]],
        pending: FrozenSet[Channel],
        event: Optional[SpvpEvent],
    ) -> "SpvpState":
        """A new state with ``updates`` (slot, new id) applied."""
        ids = array("i", self._ids)
        delta: List[Tuple[int, int, int]] = []
        for slot, new in updates:
            old = ids[slot]
            if old == new:
                continue
            ids[slot] = new
            delta.append((slot, old, new))
        return SpvpState.__new__(SpvpState)._init(
            self._space,
            ids,
            pending,
            parent=self,
            delta=tuple(delta),
            event=event,
        )

    # ------------------------------------------------------------------ hashing
    def _component_of(self, hasher, slot: int, eid: int) -> int:
        """The Zobrist component of intern id ``eid`` in ``slot``.

        Fast path: a hasher bound to this space's intern table (the
        :class:`~repro.modelcheck.hashing.ZobristFingerprinter` the transient
        explorer constructs) keys components directly on ``(slot, id)`` — no
        decode, no path hashing.  Any other hasher gets the legacy
        path-normalised components, so fingerprints stay comparable for
        callers that bring their own interner.
        """
        space = self._space
        table = space.table
        if getattr(hasher, "interner", None) is table:
            return hasher.component_id(slot, eid)
        if slot >= space.buffer_base:
            return hasher.queue_component(
                slot,
                (
                    route.path if route is not None else None
                    for route in (table.route(rid) for rid in table.queue(eid))
                ),
            )
        route = table.route(eid)
        return hasher.component(slot, route.path if route is not None else None)

    def fingerprint(self, hasher) -> int:
        """This state's Zobrist fingerprint under ``hasher``.

        Computed incrementally from the parent's cached fingerprint via the
        recorded slot deltas — O(changed slots) during a search, where parents
        are always fingerprinted before their children — falling back to a
        full fold over all slots for roots (and detached states).
        """
        if self._fp_token is hasher:
            return self._fp
        chain: List[SpvpState] = []
        state: Optional[SpvpState] = self
        while (
            state is not None
            and state._fp_token is not hasher
            and state.parent is not None
        ):
            chain.append(state)
            state = state.parent
        if state is None or state._fp_token is not hasher:
            base = state if state is not None else self
            value = 0
            component = base._component_of
            for slot, eid in enumerate(base._ids):
                value ^= component(hasher, slot, eid)
            base._fp_token = hasher
            base._fp = value
        else:
            value = state._fp
        for derived in reversed(chain):
            component = derived._component_of
            for slot, old, new in derived.delta:
                value ^= component(hasher, slot, old)
                value ^= component(hasher, slot, new)
            derived._fp_token = hasher
            derived._fp = value
        return value

    # ------------------------------------------------------------------ dunder
    def _slot_values(self) -> Tuple[object, ...]:
        """All slots decoded to routes / route tuples (cross-table compares)."""
        space = self._space
        table = space.table
        buffer_base = space.buffer_base
        return tuple(
            tuple(table.route(rid) for rid in table.queue(eid))
            if slot >= buffer_base
            else table.route(eid)
            for slot, eid in enumerate(self._ids)
        )

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, SpvpState):
            return NotImplemented
        if self._space is other._space:
            return self._ids == other._ids
        if self._space.nodes != other._space.nodes:
            return False
        return self._slot_values() == other._slot_values()

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self._space.nodes, self._slot_values()))
        return self._hash

    def __repr__(self) -> str:
        return (
            f"SpvpState({len(self._space.nodes)} nodes, "
            f"{len(self.pending)} pending channel(s))"
        )


class SpvpStepper:
    """The stateless SPVP transition function over :class:`SpvpState`.

    One stepper serves one protocol instance; it owns no mutable protocol
    state, so any number of explorations/simulations can share it and a
    single state can be expanded along every pending channel without copying
    the rest of the world.
    """

    def __init__(self, instance: PathVectorInstance) -> None:
        self.instance = instance
        self.space = _space_for(instance)
        self.table = self.space.table
        # Lifecycle overlays (scenario events, src/repro/scenarios/).  These
        # live on the stepper, not the state: events are applied once, to the
        # root of an exploration, so every state expanded by this stepper is
        # governed by the same overlay — exactly as the naive oracle's
        # per-simulator sets survive its deepcopy-per-successor.
        #: Drained nodes: keep their RIB and answer nothing — a quiesced node
        #: never re-advertises a changed best path.
        self.quiesced: Set[str] = set()
        #: Gray-failed directed sessions: route UPDATEs out of ``(a, b)`` are
        #: silently dropped at send time.  Transport-level session teardown
        #: (``fail_session``, ``crash_node``) still passes.
        self.suppressed: Set[Channel] = set()
        # Id-keyed memos over the space's intern table.  SPVP explores a very
        # large number of interleavings of a small set of distinct routes, so
        # after warm-up a delivery is dict lookups on small-int keys end to
        # end — no route hashing on the hot path.  Memo values may legally be
        # id 0 (None route / empty queue): misses test ``is None``.
        #: (rib slot, advertised rid) -> imported rid (post loop-check).
        self._import_ids: Dict[Tuple[int, int], int] = {}
        #: (out channel slot, best rid) -> advertised rid.
        self._export_ids: Dict[Tuple[int, int], int] = {}
        #: (node, rid) -> rank tuple.
        self._rank_ids: Dict[Tuple[str, int], Tuple] = {}
        #: node -> rid of its origin route.
        self._origin_ids: Dict[str, int] = {}

    def _origin_id(self, node: str) -> int:
        rid = self._origin_ids.get(node)
        if rid is None:
            rid = self.table.route_id(self.instance.origin_route(node))  # type: ignore[attr-defined]
            self._origin_ids[node] = rid
        return rid

    def _rank_of(self, node: str, rid: int) -> Tuple:
        rank = self._rank_ids.get((node, rid))
        if rank is None:
            rank = self.instance.cached_rank(node, self.table.route(rid))
            self._rank_ids[(node, rid)] = rank
        return rank

    # ------------------------------------------------------------------ roots
    def initial_state(self) -> SpvpState:
        """The SPVP initial state: origins hold and advertise their route."""
        space = self.space
        instance = self.instance
        table = self.table
        ids = array("i", bytes(4 * space.total_slots))
        pending: List[Channel] = []
        for node in space.nodes:
            if node not in space.origin_set:
                continue
            route = instance.origin_route(node)  # type: ignore[attr-defined]
            ids[space.best_slot[node]] = table.route_id(route)
            # Origins advertise their path to every peer up front (Appendix A).
            for peer, channel, slot in space.out_slots_of[node]:
                advertisement = instance.cached_export(node, peer, route)
                ids[slot] = table.queue_id((table.route_id(advertisement),))
                pending.append(channel)
        return SpvpState.__new__(SpvpState)._init(space, ids, frozenset(pending))

    def state_from_maps(
        self,
        best: Dict[str, Optional[Route]],
        rib_in: Dict[Tuple[str, str], Optional[Route]],
        buffers: Dict[Channel, Iterable[Optional[Route]]],
    ) -> SpvpState:
        """Build a state from explicit maps (oracle tests, reconstruction)."""
        space = self.space
        table = self.table
        ids = array("i", bytes(4 * space.total_slots))
        for node, slot in space.best_slot.items():
            ids[slot] = table.route_id(best[node])
        for key, slot in space.rib_slot.items():
            ids[slot] = table.route_id(rib_in[key])
        pending: List[Channel] = []
        for channel in space.channels:
            queue = tuple(buffers[channel])
            ids[space.channel_slot[channel]] = table.queue_id(
                tuple(table.route_id(route) for route in queue)
            )
            if queue:
                pending.append(channel)
        return SpvpState.__new__(SpvpState)._init(space, ids, frozenset(pending))

    # ------------------------------------------------------------------ stepping
    def deliver(self, state: SpvpState, channel: Channel) -> Tuple[SpvpEvent, SpvpState]:
        """Process the oldest advertisement queued on ``channel``.

        Returns the event and the successor state; raises
        :class:`ProtocolError` when the channel has nothing pending.
        """
        space = self.space
        table = self.table
        channel_slot = space.channel_slot.get(channel)
        if channel_slot is None:
            raise ProtocolError(f"channel {channel} has no pending message")
        qid = state._ids[channel_slot]
        if not qid:
            raise ProtocolError(f"channel {channel} has no pending message")
        queue_rids = table.queue(qid)
        sender, receiver = channel
        advertised_rid = queue_rids[0]
        remaining_qid = table.queue_id(queue_rids[1:])
        updates: List[Tuple[int, int]] = [(channel_slot, remaining_qid)]

        rib_slot = space.rib_slot[(receiver, sender)]
        imported_rid = self._import_ids.get((rib_slot, advertised_rid))
        if imported_rid is None:
            advertised = table.route(advertised_rid)
            imported = (
                None
                if advertised is None
                else self.instance.cached_import(receiver, sender, advertised)
            )
            if imported is not None and imported.path.contains(receiver):
                imported = None
            imported_rid = table.route_id(imported)
            self._import_ids[(rib_slot, advertised_rid)] = imported_rid
        updates.append((rib_slot, imported_rid))

        best_slot = space.best_slot[receiver]
        current_rid = state._ids[best_slot]
        new_best_rid = self._select_best_id(
            state, receiver, sender, imported_rid, current_rid
        )
        updates.append((best_slot, new_best_rid))
        event = SpvpEvent(
            node=receiver,
            peer=sender,
            advertised=table.route(advertised_rid),
            new_best=table.route(new_best_rid),
        )

        pending = state.pending
        if not remaining_qid:
            pending = pending - {channel}
        if (
            table.path_id(current_rid) != table.path_id(new_best_rid)
            and receiver not in self.quiesced
        ):
            # The receiver re-advertises its (possibly withdrawn) best path.
            added: List[Channel] = []
            export_ids = self._export_ids
            for peer, out_channel, out_slot in space.out_slots_of[receiver]:
                if out_channel in self.suppressed:
                    continue
                advertisement_rid = export_ids.get((out_slot, new_best_rid))
                if advertisement_rid is None:
                    advertisement_rid = table.route_id(
                        self.instance.cached_export(
                            receiver, peer, table.route(new_best_rid)
                        )
                    )
                    export_ids[(out_slot, new_best_rid)] = advertisement_rid
                out_qid = (
                    remaining_qid if out_slot == channel_slot else state._ids[out_slot]
                )
                updates.append(
                    (out_slot, table.queue_id(table.queue(out_qid) + (advertisement_rid,)))
                )
                added.append(out_channel)
            pending = pending | frozenset(added)
        return event, state._derive(updates, pending, event)

    def _select_best_id(
        self,
        state: SpvpState,
        node: str,
        updated_peer: str,
        updated_rid: int,
        current_rid: int,
    ) -> int:
        """Recompute ``node``'s best route (as an intern id) from its rib-in."""
        ids = state._ids
        best_rid = 0
        best_rank = None
        current_in = False
        if node in self.space.origin_set:
            best_rid = self._origin_id(node)
            best_rank = self._rank_of(node, best_rid)
            current_in = best_rid == current_rid
        for peer, slot in self.space.rib_slots_of[node]:
            rid = updated_rid if peer == updated_peer else ids[slot]
            if not rid:
                continue
            if rid == current_rid:
                current_in = True
            rank = self._rank_of(node, rid)
            if best_rank is None or rank < best_rank:
                best_rid = rid
                best_rank = rank
        if best_rank is None:
            return 0
        if current_rid and current_in:
            # Appendix A: if the best rib-in entry ties with the still-valid
            # current best path, the best path does not change.
            if self._rank_of(node, current_rid) == best_rank:
                return current_rid
        return best_rid

    def drain(self, state: SpvpState, max_steps: int = 100_000) -> SpvpState:
        """Deliver pending messages in canonical (slot) order until converged.

        One deterministic execution — the first pending channel is always
        delivered next — so every caller (steady-state construction before a
        perturbation, oracle comparisons) reaches the same fixed point.
        Raises :class:`ProtocolError` after ``max_steps`` deliveries
        (divergent configurations).
        """
        steps = 0
        while not state.is_converged():
            if steps >= max_steps:
                raise ProtocolError(
                    f"SPVP did not converge within {max_steps} steps for "
                    f"{self.instance.name} (possibly a divergent configuration)"
                )
            _event, state = self.deliver(state, state.pending_channels()[0])
            steps += 1
        return state

    def fail_session(self, state: SpvpState, a: str, b: str) -> SpvpState:
        """Drop the buffers between ``a`` and ``b`` and deliver ⊥ to both peers.

        Appendix A: when a session fails, queued messages are lost and each
        peer sees a withdraw.
        """
        space = self.space
        withdraw_qid = self.table.queue_id((0,))
        updates: List[Tuple[int, int]] = []
        added: List[Channel] = []
        for channel in ((a, b), (b, a)):
            slot = space.channel_slot.get(channel)
            if slot is None:
                continue
            updates.append((slot, withdraw_qid))
            added.append(channel)
        return state._derive(updates, state.pending | frozenset(added), None)

    # ------------------------------------------------------------------ lifecycle
    def crash_node(self, state: SpvpState, node: str) -> SpvpState:
        """``node`` crashes: its RIB is lost, every adjacent session drops.

        SPVP has no down-state, so a crash is modeled as crash-recovery: the
        node rejoins cold (``best = None``, empty rib-ins — even an origin,
        which lazily re-selects its origin route on the next delivery to it),
        in-flight messages towards it are lost, and each peer sees a
        transport-level ⊥ (delivered even on gray-failed sessions).
        """
        space = self.space
        table = self.table
        withdraw_qid = table.queue_id((0,))
        updates: List[Tuple[int, int]] = [(space.best_slot[node], 0)]
        added: List[Channel] = []
        removed: List[Channel] = []
        for _peer, slot in space.rib_slots_of[node]:
            updates.append((slot, 0))
        for peer, out_channel, out_slot in space.out_slots_of[node]:
            updates.append((out_slot, withdraw_qid))
            added.append(out_channel)
            in_channel = (peer, node)
            updates.append((space.channel_slot[in_channel], 0))
            removed.append(in_channel)
        pending = (state.pending - frozenset(removed)) | frozenset(added)
        return state._derive(updates, pending, None)

    def restart_node(self, state: SpvpState, node: str) -> SpvpState:
        """``node`` boots: sessions bounce, then both sides re-advertise.

        The restarting node comes up with only its locally-originated route
        (if any) and advertises it; each peer answers session re-establishment
        by re-sending its current best.  Gray-failed directions drop the route
        updates but still carry the transport ⊥.
        """
        space = self.space
        table = self.table
        instance = self.instance
        boot_rid = self._origin_id(node) if node in space.origin_set else 0
        updates: List[Tuple[int, int]] = [(space.best_slot[node], boot_rid)]
        added: List[Channel] = []
        removed: List[Channel] = []
        for _peer, slot in space.rib_slots_of[node]:
            updates.append((slot, 0))
        for peer, out_channel, out_slot in space.out_slots_of[node]:
            out_queue: Tuple[int, ...] = (0,)
            if boot_rid and out_channel not in self.suppressed:
                out_queue += (
                    table.route_id(
                        instance.cached_export(node, peer, table.route(boot_rid))
                    ),
                )
            updates.append((out_slot, table.queue_id(out_queue)))
            added.append(out_channel)
            in_channel = (peer, node)
            in_slot = space.channel_slot[in_channel]
            if in_channel in self.suppressed or peer in self.quiesced:
                updates.append((in_slot, 0))
                removed.append(in_channel)
            else:
                peer_best_rid = state._ids[space.best_slot[peer]]
                updates.append(
                    (
                        in_slot,
                        table.queue_id(
                            (
                                table.route_id(
                                    instance.cached_export(
                                        peer, node, table.route(peer_best_rid)
                                    )
                                ),
                            )
                        ),
                    )
                )
                added.append(in_channel)
        pending = (state.pending - frozenset(removed)) | frozenset(added)
        return state._derive(updates, pending, None)

    def quiesce_node(self, state: SpvpState, node: str) -> SpvpState:
        """Maintenance drain: ``node`` gracefully withdraws and goes quiet.

        The node keeps its RIB (it can still forward) but appends a ⊥ to every
        outbound session and — via the ``quiesced`` overlay — stops
        re-advertising best-path changes until :meth:`return_to_service`.
        """
        self.quiesced.add(node)
        table = self.table
        updates: List[Tuple[int, int]] = []
        added: List[Channel] = []
        for _peer, channel, slot in self.space.out_slots_of[node]:
            if channel in self.suppressed:
                continue
            updates.append((slot, table.queue_id(table.queue(state._ids[slot]) + (0,))))
            added.append(channel)
        return state._derive(updates, state.pending | frozenset(added), None)

    def return_to_service(self, state: SpvpState, node: str) -> SpvpState:
        """End a maintenance drain: ``node`` re-advertises its current best."""
        self.quiesced.discard(node)
        space = self.space
        table = self.table
        best_rid = state._ids[space.best_slot[node]]
        export_ids = self._export_ids
        updates: List[Tuple[int, int]] = []
        added: List[Channel] = []
        for peer, channel, slot in space.out_slots_of[node]:
            if channel in self.suppressed:
                continue
            advertisement_rid = export_ids.get((slot, best_rid))
            if advertisement_rid is None:
                advertisement_rid = table.route_id(
                    self.instance.cached_export(node, peer, table.route(best_rid))
                )
                export_ids[(slot, best_rid)] = advertisement_rid
            updates.append(
                (slot, table.queue_id(table.queue(state._ids[slot]) + (advertisement_rid,)))
            )
            added.append(channel)
        return state._derive(updates, state.pending | frozenset(added), None)

    def suppress_session(self, state: SpvpState, exporter: str, importer: str) -> SpvpState:
        """Gray failure: the ``exporter → importer`` direction silently drops
        route updates from now on; queued updates are lost, and the importer's
        rib-in stays stale — that silent staleness is the gray part."""
        channel = (exporter, importer)
        self.suppressed.add(channel)
        slot = self.space.channel_slot.get(channel)
        if slot is None:
            return state
        return state._derive([(slot, 0)], state.pending - {channel}, None)


class SpvpSimulator:
    """An executable extended-SPVP instance over a :class:`PathVectorInstance`.

    A thin mutable wrapper over the persistent core: the current
    :class:`SpvpState`, an RNG for non-deterministic channel picks, and the
    event history.  ``step`` picks a pending message (non-deterministically
    via the supplied RNG) and processes it atomically, as in Appendix A.
    Channel enumeration order matches the original dict-based simulator, so
    seeded runs reproduce the same executions.
    """

    def __init__(self, instance: PathVectorInstance, seed: int = 0) -> None:
        self.instance = instance
        self.rng = random.Random(seed)
        self.stepper = SpvpStepper(instance)
        self.state = self.stepper.initial_state()
        self.history: List[SpvpEvent] = []
        self.steps = 0

    # ------------------------------------------------------------------ views
    @property
    def best(self) -> Dict[str, Optional[Route]]:
        """The per-node best routes of the current state."""
        return self.state.best_map()

    @property
    def rib_in(self) -> Dict[Tuple[str, str], Optional[Route]]:
        """The per-(node, peer) rib-in entries of the current state."""
        return self.state.rib_in_map()

    @property
    def buffers(self) -> Dict[Channel, Tuple[Optional[Route], ...]]:
        """The per-channel message queues of the current state."""
        return self.state.buffer_map()

    # ------------------------------------------------------------------ stepping
    def pending_messages(self) -> List[Channel]:
        """(sender, receiver) pairs with at least one queued advertisement."""
        return self.state.pending_channels()

    def is_converged(self) -> bool:
        """True when every buffer is empty (the SPVP convergence condition)."""
        return self.state.is_converged()

    def step(self, channel: Optional[Channel] = None) -> Optional[SpvpEvent]:
        """Process one queued advertisement; returns the event or None if idle."""
        pending = self.state.pending_channels()
        if not pending:
            return None
        if channel is None:
            channel = self.rng.choice(pending)
        event, self.state = self.stepper.deliver(self.state, channel)
        self.steps += 1
        self.history.append(event)
        return event

    # ------------------------------------------------------------------ running
    def run(self, max_steps: int = 100_000) -> RpvpState:
        """Run until convergence (or raise after ``max_steps``); return the state."""
        while not self.is_converged():
            if self.steps >= max_steps:
                raise ProtocolError(
                    f"SPVP did not converge within {max_steps} steps for "
                    f"{self.instance.name} (possibly a divergent configuration)"
                )
            self.step()
        return self.converged_state()

    def converged_state(self) -> RpvpState:
        """The current best-path assignment as an :class:`RpvpState`."""
        return self.state.converged_rpvp()

    def fail_session(self, a: str, b: str) -> None:
        """Drop the buffers between ``a`` and ``b`` and deliver ⊥ to both peers."""
        self.state = self.stepper.fail_session(self.state, a, b)

    # ------------------------------------------------------------------ lifecycle
    def crash_node(self, node: str) -> None:
        """Crash ``node`` (see :meth:`SpvpStepper.crash_node`)."""
        self.state = self.stepper.crash_node(self.state, node)

    def restart_node(self, node: str) -> None:
        """Boot ``node`` (see :meth:`SpvpStepper.restart_node`)."""
        self.state = self.stepper.restart_node(self.state, node)

    def quiesce_node(self, node: str) -> None:
        """Drain ``node`` for maintenance (see :meth:`SpvpStepper.quiesce_node`)."""
        self.state = self.stepper.quiesce_node(self.state, node)

    def return_to_service(self, node: str) -> None:
        """End ``node``'s drain (see :meth:`SpvpStepper.return_to_service`)."""
        self.state = self.stepper.return_to_service(self.state, node)

    def suppress_session(self, exporter: str, importer: str) -> None:
        """Gray-fail ``exporter → importer`` (see :meth:`SpvpStepper.suppress_session`)."""
        self.state = self.stepper.suppress_session(self.state, exporter, importer)


class ReferenceSpvpSimulator:
    """The original mutable dict/deque SPVP simulator, kept as an oracle.

    This is the naive implementation the persistent core replaced: plain
    dictionaries for best/rib-in, ``deque`` buffers, in-place mutation.  The
    property tests (`tests/property/test_spvp_state.py`) step it in lockstep
    with :class:`SpvpState` to pin observational equivalence, and the
    deepcopy-based :class:`repro.transient.explorer.NaiveTransientAnalyzer`
    explores over it as the throughput baseline.  It deliberately calls the
    uncached ``import_``/``export`` instance methods so a memoisation bug
    cannot hide from the comparison.
    """

    def __init__(self, instance: PathVectorInstance, seed: int = 0) -> None:
        self.instance = instance
        self.rng = random.Random(seed)
        self.best: Dict[str, Optional[Route]] = {}
        self.rib_in: Dict[Tuple[str, str], Optional[Route]] = {}
        self.buffers: Dict[Channel, Deque[Optional[Route]]] = {}
        self.history: List[SpvpEvent] = []
        self.steps = 0
        # Lifecycle overlays, mirroring SpvpStepper's.  deepcopy-based
        # explorers inherit them per successor, which matches the stepper's
        # constant-per-exploration overlay because events only fire at roots.
        self.quiesced: Set[str] = set()
        self.suppressed: Set[Channel] = set()
        self._initialise()

    # ------------------------------------------------------------------ setup
    def _initialise(self) -> None:
        origin_set = set(self.instance.origins())
        for node in self.instance.nodes():
            self.best[node] = (
                self.instance.origin_route(node)  # type: ignore[attr-defined]
                if node in origin_set
                else None
            )
            for peer in self.instance.peers(node):
                self.rib_in[(node, peer)] = None
                self.buffers[(peer, node)] = deque()
        for origin in origin_set:
            self._advertise(origin)

    def _advertise(self, sender: str) -> None:
        """Queue ``sender``'s current best path to all of its peers."""
        for peer in self.instance.peers(sender):
            if (sender, peer) in self.suppressed:
                continue
            advertisement = self.instance.export(sender, peer, self.best[sender])
            self.buffers[(sender, peer)].append(advertisement)

    # ------------------------------------------------------------------ stepping
    def pending_messages(self) -> List[Channel]:
        """(sender, receiver) pairs with at least one queued advertisement."""
        return [key for key, queue in self.buffers.items() if queue]

    def is_converged(self) -> bool:
        """True when every buffer is empty (the SPVP convergence condition)."""
        return not self.pending_messages()

    def step(self, channel: Optional[Channel] = None) -> Optional[SpvpEvent]:
        """Process one queued advertisement; returns the event or None if idle."""
        pending = self.pending_messages()
        if not pending:
            return None
        if channel is None:
            channel = self.rng.choice(pending)
        elif channel not in pending or not self.buffers[channel]:
            raise ProtocolError(f"channel {channel} has no pending message")
        sender, receiver = channel
        advertised = self.buffers[channel].popleft()
        self.steps += 1

        imported = (
            None
            if advertised is None
            else self.instance.import_(receiver, sender, advertised)
        )
        if imported is not None and imported.path.contains(receiver):
            imported = None
        self.rib_in[(receiver, sender)] = imported

        new_best = self._select_best(receiver)
        event = SpvpEvent(node=receiver, peer=sender, advertised=advertised, new_best=new_best)
        self.history.append(event)
        if self._paths_differ(self.best[receiver], new_best) and receiver not in self.quiesced:
            self.best[receiver] = new_best
            self._advertise(receiver)
        else:
            self.best[receiver] = new_best
        return event

    @staticmethod
    def _paths_differ(old: Optional[Route], new: Optional[Route]) -> bool:
        old_path = old.path if old is not None else None
        new_path = new.path if new is not None else None
        return old_path != new_path

    def _select_best(self, node: str) -> Optional[Route]:
        """Recompute ``node``'s best route from its rib-in and local origin."""
        candidates: List[Route] = []
        if node in set(self.instance.origins()):
            candidates.append(self.instance.origin_route(node))  # type: ignore[attr-defined]
        for peer in self.instance.peers(node):
            stored = self.rib_in.get((node, peer))
            if stored is not None:
                candidates.append(stored)
        if not candidates:
            return None
        current = self.best[node]
        best = min(candidates, key=lambda route: self.instance.rank(node, route))
        if current is not None and current in candidates:
            if self.instance.rank(node, current) == self.instance.rank(node, best):
                return current
        return best

    # ------------------------------------------------------------------ running
    def run(self, max_steps: int = 100_000) -> RpvpState:
        """Run until convergence (or raise after ``max_steps``); return the state."""
        while not self.is_converged():
            if self.steps >= max_steps:
                raise ProtocolError(
                    f"SPVP did not converge within {max_steps} steps for "
                    f"{self.instance.name} (possibly a divergent configuration)"
                )
            self.step()
        return self.converged_state()

    def converged_state(self) -> RpvpState:
        """The current best-path assignment as an :class:`RpvpState`."""
        return RpvpState.from_dict(dict(self.best))

    def fail_session(self, a: str, b: str) -> None:
        """Drop the buffers between ``a`` and ``b`` and deliver ⊥ to both peers."""
        for sender, receiver in ((a, b), (b, a)):
            if (sender, receiver) in self.buffers:
                self.buffers[(sender, receiver)].clear()
                self.buffers[(sender, receiver)].append(None)

    # ------------------------------------------------------------------ lifecycle
    def crash_node(self, node: str) -> None:
        """Crash ``node`` (mirror of :meth:`SpvpStepper.crash_node`)."""
        self.best[node] = None
        for peer in self.instance.peers(node):
            self.rib_in[(node, peer)] = None
            out = self.buffers[(node, peer)]
            out.clear()
            out.append(None)
            self.buffers[(peer, node)].clear()

    def restart_node(self, node: str) -> None:
        """Boot ``node`` (mirror of :meth:`SpvpStepper.restart_node`)."""
        origin = node in set(self.instance.origins())
        boot = self.instance.origin_route(node) if origin else None  # type: ignore[attr-defined]
        self.best[node] = boot
        for peer in self.instance.peers(node):
            self.rib_in[(node, peer)] = None
            out = self.buffers[(node, peer)]
            out.clear()
            out.append(None)
            if boot is not None and (node, peer) not in self.suppressed:
                out.append(self.instance.export(node, peer, boot))
            inbound = self.buffers[(peer, node)]
            inbound.clear()
            if (peer, node) not in self.suppressed and peer not in self.quiesced:
                inbound.append(self.instance.export(peer, node, self.best[peer]))

    def quiesce_node(self, node: str) -> None:
        """Drain ``node`` (mirror of :meth:`SpvpStepper.quiesce_node`)."""
        self.quiesced.add(node)
        for peer in self.instance.peers(node):
            if (node, peer) not in self.suppressed:
                self.buffers[(node, peer)].append(None)

    def return_to_service(self, node: str) -> None:
        """End ``node``'s drain (mirror of :meth:`SpvpStepper.return_to_service`)."""
        self.quiesced.discard(node)
        self._advertise(node)

    def suppress_session(self, exporter: str, importer: str) -> None:
        """Gray-fail ``exporter → importer`` (mirror of
        :meth:`SpvpStepper.suppress_session`)."""
        channel = (exporter, importer)
        self.suppressed.add(channel)
        if channel in self.buffers:
            self.buffers[channel].clear()
