"""Extended SPVP: the message-passing reference model (paper Appendix A).

SPVP is the faithful abstraction of real BGP message exchange: every node
keeps a ``rib-in`` per peer, peers exchange advertisements over reliable FIFO
buffers, and a node that changes its best path re-advertises it.  Plankton
does *not* model check SPVP — it checks RPVP, which Theorem 1 proves reaches
the same converged states — but SPVP is implemented here for three reasons:

* the soundness/completeness relationship between the two models is validated
  experimentally by the test suite (every SPVP converged state is also found
  by the RPVP search, and vice versa, on the paper's example gadgets);
* the Batfish-style simulation baseline (`repro.baselines.simulation`) is one
  arbitrary SPVP execution, which is exactly how simulation misses violations
  that only some orderings expose (BGP wedgies);
* divergent configurations (BAD GADGET) can be demonstrated on it.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Set, Tuple

from repro.exceptions import ProtocolError
from repro.protocols.base import EPSILON, Path, PathVectorInstance, Route
from repro.protocols.rpvp import RpvpState


@dataclass(frozen=True)
class SpvpEvent:
    """One SPVP step: ``node`` processed an advertisement from ``peer``."""

    node: str
    peer: str
    advertised: Optional[Route]
    new_best: Optional[Route]

    def describe(self) -> str:
        adv = self.advertised.describe() if self.advertised else "withdraw"
        best = self.new_best.describe() if self.new_best else "<no route>"
        return f"{self.node} processed {adv} from {self.peer}; best is now {best}"


class SpvpSimulator:
    """An executable extended-SPVP instance over a :class:`PathVectorInstance`.

    The simulator owns mutable state: per-node best routes, per-(node, peer)
    rib-in, and per-(sender, receiver) FIFO message buffers.  ``step`` picks a
    pending message (non-deterministically via the supplied RNG) and processes
    it atomically, as in Appendix A.
    """

    def __init__(self, instance: PathVectorInstance, seed: int = 0) -> None:
        self.instance = instance
        self.rng = random.Random(seed)
        self.best: Dict[str, Optional[Route]] = {}
        self.rib_in: Dict[Tuple[str, str], Optional[Route]] = {}
        self.buffers: Dict[Tuple[str, str], Deque[Optional[Route]]] = {}
        self.history: List[SpvpEvent] = []
        self.steps = 0
        self._initialise()

    # ------------------------------------------------------------------ setup
    def _initialise(self) -> None:
        origin_set = set(self.instance.origins())
        for node in self.instance.nodes():
            self.best[node] = (
                self.instance.origin_route(node)  # type: ignore[attr-defined]
                if node in origin_set
                else None
            )
            for peer in self.instance.peers(node):
                self.rib_in[(node, peer)] = None
                self.buffers[(peer, node)] = deque()
        # Origins advertise their path to every peer up front (Appendix A).
        for origin in origin_set:
            self._advertise(origin)

    def _advertise(self, sender: str) -> None:
        """Queue ``sender``'s current best path to all of its peers."""
        for peer in self.instance.peers(sender):
            advertisement = self.instance.export(sender, peer, self.best[sender])
            self.buffers[(sender, peer)].append(advertisement)

    # ------------------------------------------------------------------ stepping
    def pending_messages(self) -> List[Tuple[str, str]]:
        """(sender, receiver) pairs with at least one queued advertisement."""
        return [key for key, queue in self.buffers.items() if queue]

    def is_converged(self) -> bool:
        """True when every buffer is empty (the SPVP convergence condition)."""
        return not self.pending_messages()

    def step(self, channel: Optional[Tuple[str, str]] = None) -> Optional[SpvpEvent]:
        """Process one queued advertisement; returns the event or None if idle."""
        pending = self.pending_messages()
        if not pending:
            return None
        if channel is None:
            channel = self.rng.choice(pending)
        elif channel not in pending or not self.buffers[channel]:
            raise ProtocolError(f"channel {channel} has no pending message")
        sender, receiver = channel
        advertised = self.buffers[channel].popleft()
        self.steps += 1

        imported = (
            None
            if advertised is None
            else self.instance.import_(receiver, sender, advertised)
        )
        if imported is not None and imported.path.contains(receiver):
            imported = None
        self.rib_in[(receiver, sender)] = imported

        new_best = self._select_best(receiver)
        event = SpvpEvent(node=receiver, peer=sender, advertised=advertised, new_best=new_best)
        self.history.append(event)
        if self._paths_differ(self.best[receiver], new_best):
            self.best[receiver] = new_best
            self._advertise(receiver)
        else:
            self.best[receiver] = new_best
        return event

    @staticmethod
    def _paths_differ(old: Optional[Route], new: Optional[Route]) -> bool:
        old_path = old.path if old is not None else None
        new_path = new.path if new is not None else None
        return old_path != new_path

    def _select_best(self, node: str) -> Optional[Route]:
        """Recompute ``node``'s best route from its rib-in and local origin."""
        candidates: List[Route] = []
        if node in set(self.instance.origins()):
            candidates.append(self.instance.origin_route(node))  # type: ignore[attr-defined]
        for peer in self.instance.peers(node):
            stored = self.rib_in.get((node, peer))
            if stored is not None:
                candidates.append(stored)
        if not candidates:
            return None
        current = self.best[node]
        best = min(candidates, key=lambda route: self.instance.rank(node, route))
        if current is not None and current in candidates:
            # Appendix A: if the best rib-in entry ties with the still-valid
            # current best path, the best path does not change.
            if self.instance.rank(node, current) == self.instance.rank(node, best):
                return current
        return best

    # ------------------------------------------------------------------ running
    def run(self, max_steps: int = 100_000) -> RpvpState:
        """Run until convergence (or raise after ``max_steps``); return the state."""
        while not self.is_converged():
            if self.steps >= max_steps:
                raise ProtocolError(
                    f"SPVP did not converge within {max_steps} steps for "
                    f"{self.instance.name} (possibly a divergent configuration)"
                )
            self.step()
        return self.converged_state()

    def converged_state(self) -> RpvpState:
        """The current best-path assignment as an :class:`RpvpState`."""
        return RpvpState.from_dict(dict(self.best))

    def fail_session(self, a: str, b: str) -> None:
        """Drop the buffers between ``a`` and ``b`` and deliver ⊥ to both peers.

        Appendix A: when a session fails, queued messages are lost and each
        peer sees a withdraw.
        """
        for sender, receiver in ((a, b), (b, a)):
            if (sender, receiver) in self.buffers:
                self.buffers[(sender, receiver)].clear()
                self.buffers[(sender, receiver)].append(None)
