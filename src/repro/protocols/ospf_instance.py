"""OSPF as a path-vector protocol instance.

The paper uses a single abstract control plane (RPVP) for all protocols;
OSPF fits by taking the ranking function to be the accumulated IGP cost and
the filters to be "accept everything inside the OSPF domain".  OSPF's outcome
is deterministic (the paper notes "OSPF by its nature has deterministic
outcomes"), which the deterministic-node detection heuristic (§4.1.2) exploits
via the cached network-wide shortest-path computation in
:class:`repro.protocols.ospf.OspfComputation`.

OSPF is the one protocol where the implementation permits multipath: a node
may keep several equal-cost best paths (ECMP), matching the special-case
deviation described at the end of §3.4.2.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.config.objects import NetworkConfig
from repro.exceptions import ProtocolError
from repro.netaddr import Prefix
from repro.protocols.base import EPSILON, Path, PathVectorInstance, Route, RouteSource
from repro.protocols.ospf import INFINITY, OspfComputation


class OspfInstance(PathVectorInstance):
    """The OSPF control plane for one prefix, as a :class:`PathVectorInstance`."""

    def __init__(
        self,
        network: NetworkConfig,
        prefix: Prefix,
        failed_links: Optional[Set[int]] = None,
        computation: Optional[OspfComputation] = None,
        extra_origins: Optional[Sequence[str]] = None,
        allow_multipath: bool = True,
    ) -> None:
        self.network = network
        self.prefix = prefix
        self.failed_links = set(failed_links or ())
        self.computation = computation or OspfComputation(network)
        self.allow_multipath = allow_multipath
        self.name = f"ospf:{prefix}"

        self._speakers = [
            name for name, cfg in network.devices.items() if cfg.ospf is not None
        ]
        self._speaker_set = set(self._speakers)
        origin_set = {
            name
            for name in self._speakers
            if any(p.contains_prefix(prefix) for p in network.device(name).ospf.networks)
        }
        # Redistributed static routes appear as OSPF external origins.
        for name in self._speakers:
            config = self.network.device(name)
            if config.ospf.redistribute_static and any(
                route.prefix.contains_prefix(prefix) for route in config.static_routes
            ):
                origin_set.add(name)
        for name in extra_origins or ():
            if name in self._speaker_set:
                origin_set.add(name)
        self._origins = sorted(origin_set)
        self._peers_cache: Dict[str, Tuple[str, ...]] = {}

    # ------------------------------------------------------------------ structure
    def nodes(self) -> Sequence[str]:
        return list(self._speakers)

    def origins(self) -> Sequence[str]:
        return list(self._origins)

    def peers(self, node: str) -> Sequence[str]:
        cached = self._peers_cache.get(node)
        if cached is not None:
            return cached
        result: List[str] = []
        config = self.network.device(node).ospf
        if config is not None:
            for link in self.network.topology.edges(node, self.failed_links):
                neighbor = link.other(node)
                if neighbor not in self._speaker_set:
                    continue
                if config.is_passive(neighbor):
                    continue
                if self.network.device(neighbor).ospf.is_passive(node):
                    continue
                result.append(neighbor)
        peers = tuple(sorted(set(result)))
        self._peers_cache[node] = peers
        return peers

    # ------------------------------------------------------------------ filters
    def export(self, exporter: str, importer: str, route: Optional[Route]) -> Optional[Route]:
        if route is None:
            return None
        if importer not in self.peers(exporter):
            return None
        return replace(route, path=route.path.prepend(exporter))

    def import_(self, importer: str, exporter: str, route: Optional[Route]) -> Optional[Route]:
        if route is None:
            return None
        link_weight = self._edge_cost(importer, exporter)
        if link_weight == INFINITY:
            return None
        return replace(
            route,
            source=RouteSource.OSPF,
            igp_cost=route.igp_cost + int(link_weight),
        )

    def _edge_cost(self, node: str, neighbor: str) -> float:
        """Cost of the node -> neighbour edge (cheapest parallel live link)."""
        best = INFINITY
        for link in self.network.topology.links_between(node, neighbor):
            if link.link_id in self.failed_links:
                continue
            cost = self.computation.link_cost(node, neighbor, link.weight_from(node))
            best = min(best, cost)
        return best

    # ------------------------------------------------------------------ ranking
    def rank(self, node: str, route: Route) -> Tuple:
        """OSPF prefers the lowest accumulated cost; ECMP ties stay tied."""
        if route.path == EPSILON:
            return (-1,)
        return (route.igp_cost,)

    def multipath_allowed(self, node: str) -> bool:
        return self.allow_multipath

    # ------------------------------------------------------------------ helpers
    def origin_route(self, node: str) -> Route:
        """The route an origin injects for the prefix (cost 0)."""
        if node not in self._origins:
            raise ProtocolError(f"{node} does not originate {self.prefix} into OSPF")
        return Route(path=EPSILON, source=RouteSource.OSPF, igp_cost=0, origin_node=node)

    def routing_table(self):
        """The deterministic SPF result for this instance's origins/failures."""
        return self.computation.compute(self._origins, self.failed_links)

    def deterministic_order(self) -> Tuple[str, ...]:
        """Nodes ordered by increasing SPF distance (the §4.1.2 heuristic)."""
        return self.routing_table().deterministic_order


def build_ospf_instance(
    network: NetworkConfig,
    prefix: Prefix,
    failed_links: Optional[Set[int]] = None,
    computation: Optional[OspfComputation] = None,
) -> OspfInstance:
    """Convenience constructor mirroring :func:`build_bgp_instance`."""
    return OspfInstance(network, prefix, failed_links=failed_links, computation=computation)
