"""OSPF as a path-vector protocol instance.

The paper uses a single abstract control plane (RPVP) for all protocols;
OSPF fits by taking the ranking function to be the accumulated IGP cost and
the filters to be "accept everything inside the OSPF domain".  OSPF's outcome
is deterministic (the paper notes "OSPF by its nature has deterministic
outcomes"), which the deterministic-node detection heuristic (§4.1.2) exploits
via the cached network-wide shortest-path computation in
:class:`repro.protocols.ospf.OspfComputation`.

OSPF is the one protocol where the implementation permits multipath: a node
may keep several equal-cost best paths (ECMP), matching the special-case
deviation described at the end of §3.4.2.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.config.objects import NetworkConfig
from repro.exceptions import ProtocolError
from repro.netaddr import Prefix
from repro.protocols.base import EPSILON, Path, PathVectorInstance, Route, RouteSource
from repro.protocols.ospf import INFINITY, OspfComputation
from repro.protocols.rpvp import node_space_for

#: Distinct-from-None sentinel for memo lookups whose value may be None.
_MISSING = object()


class OspfInstance(PathVectorInstance):
    """The OSPF control plane for one prefix, as a :class:`PathVectorInstance`."""

    def __init__(
        self,
        network: NetworkConfig,
        prefix: Prefix,
        failed_links: Optional[Set[int]] = None,
        computation: Optional[OspfComputation] = None,
        extra_origins: Optional[Sequence[str]] = None,
        allow_multipath: bool = True,
    ) -> None:
        self.network = network
        self.prefix = prefix
        self.failed_links = set(failed_links or ())
        self.computation = computation or OspfComputation(network)
        self.allow_multipath = allow_multipath
        self.name = f"ospf:{prefix}"

        self._speakers = [
            name for name, cfg in network.devices.items() if cfg.ospf is not None
        ]
        self._speaker_set = set(self._speakers)
        origin_set = {
            name
            for name in self._speakers
            if any(p.contains_prefix(prefix) for p in network.device(name).ospf.networks)
        }
        # Redistributed static routes appear as OSPF external origins.
        for name in self._speakers:
            config = self.network.device(name)
            if config.ospf.redistribute_static and any(
                route.prefix.contains_prefix(prefix) for route in config.static_routes
            ):
                origin_set.add(name)
        for name in extra_origins or ():
            if name in self._speaker_set:
                origin_set.add(name)
        self._origins = sorted(origin_set)
        self._peers_cache: Dict[str, Tuple[str, ...]] = {}
        # OSPF filters and ranking are independent of the prefix (only the
        # origin set differs between per-prefix instances), so the filter
        # memos of PathVectorInstance can be shared across every instance
        # built over the same computation and failure scenario — the verifier
        # explores one instance per PEC and would otherwise re-evaluate the
        # identical export/import per edge for each of them.
        shared = self.computation.shared_filter_caches(frozenset(self.failed_links))
        self._export_cache = shared["export"]
        self._import_cache = shared["import"]
        self._advertisement_cache = shared["advertisement"]
        self._rank_cache = shared["rank"]
        self._edge_cost_cache = shared["edge_cost"]
        self._engine_adv_edge = shared["adv_edge"]
        self._engine_rank_at = shared["rank_at"]
        # The id-keyed memos are only meaningful against one intern table.
        # The node space is memoised weakly, so without a strong anchor it
        # would be collected between per-PEC explorations and rebuilt with
        # fresh (colliding) ids; pinning it on the shared cache dict keeps
        # one table alive for the lifetime of the computation.
        self._node_space = shared.setdefault("node_space", node_space_for(self))
        # OSPF ranking is a tuple build over two fields — cheaper to redo
        # than to hash a Route into the shared rank memo.  The candidate
        # engine keeps its own id-keyed rank memo on top either way.
        self._engine_rank_fn = self.rank

    # ------------------------------------------------------------------ structure
    def nodes(self) -> Sequence[str]:
        return list(self._speakers)

    def origins(self) -> Sequence[str]:
        return list(self._origins)

    def peers(self, node: str) -> Sequence[str]:
        cached = self._peers_cache.get(node)
        if cached is not None:
            return cached
        result: List[str] = []
        config = self.network.device(node).ospf
        if config is not None:
            for link in self.network.topology.edges(node, self.failed_links):
                neighbor = link.other(node)
                if neighbor not in self._speaker_set:
                    continue
                if config.is_passive(neighbor):
                    continue
                if self.network.device(neighbor).ospf.is_passive(node):
                    continue
                result.append(neighbor)
        peers = tuple(sorted(set(result)))
        self._peers_cache[node] = peers
        return peers

    # ------------------------------------------------------------------ filters
    def export(self, exporter: str, importer: str, route: Optional[Route]) -> Optional[Route]:
        if route is None:
            return None
        if importer not in self.peers(exporter):
            return None
        return route.with_path(route.path.prepend(exporter))

    def import_(self, importer: str, exporter: str, route: Optional[Route]) -> Optional[Route]:
        if route is None:
            return None
        link_weight = self._edge_cost(importer, exporter)
        if link_weight == INFINITY:
            return None
        return Route(
            path=route.path,
            source=RouteSource.OSPF,
            local_pref=route.local_pref,
            as_path_length=route.as_path_length,
            med=route.med,
            igp_cost=route.igp_cost + int(link_weight),
            communities=route.communities,
            origin_node=route.origin_node,
        )

    def _edge_cost(self, node: str, neighbor: str) -> float:
        """Cost of the node -> neighbour edge (cheapest parallel live link)."""
        cached = self._edge_cost_cache.get((node, neighbor))
        if cached is not None:
            return cached
        best = INFINITY
        for link in self.network.topology.links_between(node, neighbor):
            if link.link_id in self.failed_links:
                continue
            cost = self.computation.link_cost(node, neighbor, link.weight_from(node))
            best = min(best, cost)
        self._edge_cost_cache[(node, neighbor)] = best
        return best

    def advertisement(self, importer: str, exporter: str, route: Optional[Route]) -> Optional[Route]:
        """Memoised fused advertisement (see :meth:`advertisement_direct`)."""
        cache = self._advertisement_cache
        key = (importer, exporter, route)
        cached = cache.get(key, _MISSING)
        if cached is not _MISSING:
            return cached
        result = self.advertisement_direct(importer, exporter, route)
        cache[key] = result
        return result

    def advertisement_direct(
        self, importer: str, exporter: str, route: Optional[Route]
    ) -> Optional[Route]:
        """Fused ``import(export(route))`` for OSPF, uncached.

        Semantically identical to the base-class composition (export filter,
        loop rejection, import filter), collapsed into a single :class:`Route`
        construction: for OSPF the composition is just "prepend the exporter,
        add the edge cost".  The RPVP candidate engine calls this uncached
        variant — its per-edge id memos already guarantee one evaluation per
        (edge, route), so a second route-keyed memo would only add hashing.
        """
        result: Optional[Route] = None
        # The loop check on the exported path (exporter,)+path splits into
        # an exporter != importer guard plus a membership test on the
        # unprepended path.
        if (
            route is not None
            and importer != exporter
            and importer in self.peers(exporter)
            and importer not in route.path
        ):
            weight = self._edge_cost(importer, exporter)
            if weight != INFINITY:
                result = object.__new__(Route)
                object.__setattr__(
                    result,
                    "__dict__",
                    {
                        "path": route.path.prepend(exporter),
                        "source": RouteSource.OSPF,
                        "local_pref": route.local_pref,
                        "as_path_length": route.as_path_length,
                        "med": route.med,
                        "igp_cost": route.igp_cost + int(weight),
                        "communities": route.communities,
                        "origin_node": route.origin_node,
                    },
                )
        return result

    # ------------------------------------------------------------------ ranking
    def rank(self, node: str, route: Route) -> Tuple:
        """OSPF prefers the lowest accumulated cost; ECMP ties stay tied."""
        if route.path == EPSILON:
            return (-1,)
        return (route.igp_cost,)

    def multipath_allowed(self, node: str) -> bool:
        return self.allow_multipath

    # ------------------------------------------------------------------ helpers
    def origin_route(self, node: str) -> Route:
        """The route an origin injects for the prefix (cost 0).

        OSPF routes deliberately do not stamp ``origin_node``: the origin is
        already the last element of the path, and leaving the field unset
        keeps routes — and with them every filter/rank memo key and intern id
        — identical across the per-prefix instances of one failure scenario,
        so the shared caches actually hit across PECs.
        """
        if node not in self._origins:
            raise ProtocolError(f"{node} does not originate {self.prefix} into OSPF")
        return Route(path=EPSILON, source=RouteSource.OSPF, igp_cost=0)

    def routing_table(self):
        """The deterministic SPF result for this instance's origins/failures."""
        return self.computation.compute(self._origins, self.failed_links)

    def deterministic_order(self) -> Tuple[str, ...]:
        """Nodes ordered by increasing SPF distance (the §4.1.2 heuristic)."""
        return self.routing_table().deterministic_order


def build_ospf_instance(
    network: NetworkConfig,
    prefix: Prefix,
    failed_links: Optional[Set[int]] = None,
    computation: Optional[OspfComputation] = None,
) -> OspfInstance:
    """Convenience constructor mirroring :func:`build_bgp_instance`."""
    return OspfInstance(network, prefix, failed_links=failed_links, computation=computation)
