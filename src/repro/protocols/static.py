"""Static route resolution.

Static routes contribute directly to the FIB.  A static route whose next hop
is an IP address is *recursive*: its forwarding behaviour is defined by how
the network routes packets destined to that address, which is what creates
PEC dependencies (paper §3.2, including the self-loop case observed in the
real-world configurations of §5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.config.objects import NetworkConfig, StaticRoute
from repro.netaddr import Prefix
from repro.topology import Topology


@dataclass(frozen=True)
class StaticResolution:
    """Resolved static next hops for one destination prefix on one device.

    ``next_hop_nodes`` are directly usable FIB next hops.  ``unresolved_ips``
    are recursive next-hop addresses that must be resolved against the
    converged data plane of the PEC covering that address.
    ``drop`` marks a Null0-style discard route.
    """

    device: str
    prefix: Prefix
    next_hop_nodes: Tuple[str, ...] = ()
    unresolved_ips: Tuple[Prefix, ...] = ()
    drop: bool = False
    distance: int = 1


def static_routes_matching(
    network: NetworkConfig,
    device: str,
    prefix: Prefix,
) -> List[StaticRoute]:
    """Static routes on ``device`` that cover ``prefix``.

    Plankton executes the control plane per configured prefix (paper §3.3);
    a static route applies to an executed prefix when the route's destination
    covers it.
    """
    return [
        route
        for route in network.device(device).static_routes
        if route.prefix.contains_prefix(prefix)
    ]


def most_specific_static(routes: Sequence[StaticRoute]) -> List[StaticRoute]:
    """Among ``routes``, keep only those with the longest destination prefix."""
    if not routes:
        return []
    best_length = max(route.prefix.length for route in routes)
    return [route for route in routes if route.prefix.length == best_length]


def resolve_static_routes(
    network: NetworkConfig,
    device: str,
    prefix: Prefix,
    failed_links: Optional[Set[int]] = None,
) -> Optional[StaticResolution]:
    """Resolve the static routing contribution of ``device`` for ``prefix``.

    Returns None when no static route matches.  Directly connected next-hop
    nodes are validated against the (failure-adjusted) topology: a static
    route via a neighbour whose connecting links are all down contributes
    nothing, matching router behaviour where the route is withdrawn from the
    FIB when the interface goes down.
    """
    matching = most_specific_static(static_routes_matching(network, device, prefix))
    if not matching:
        return None
    topology = network.topology
    live_neighbors = set(topology.neighbors(device, failed_links))
    next_hops: List[str] = []
    unresolved: List[Prefix] = []
    drop = False
    distance = min(route.distance for route in matching)
    for route in matching:
        if route.drop:
            drop = True
        elif route.next_hop_node is not None:
            if route.next_hop_node in live_neighbors:
                next_hops.append(route.next_hop_node)
        elif route.next_hop_ip is not None:
            unresolved.append(route.next_hop_ip)
    if not next_hops and not unresolved and not drop:
        return None
    return StaticResolution(
        device=device,
        prefix=prefix,
        next_hop_nodes=tuple(sorted(set(next_hops))),
        unresolved_ips=tuple(sorted(set(unresolved), key=str)),
        drop=drop and not next_hops and not unresolved,
        distance=distance,
    )


def recursive_dependencies(network: NetworkConfig) -> List[Tuple[Prefix, Prefix]]:
    """All (destination prefix, next-hop prefix) pairs from recursive statics.

    The PEC dependency graph (paper §3.2) adds an edge from the PEC holding
    the destination prefix to the PEC holding the next-hop address for each
    such pair.
    """
    pairs: List[Tuple[Prefix, Prefix]] = []
    for device in network.devices.values():
        for route in device.static_routes:
            if route.next_hop_ip is not None:
                pairs.append((route.prefix, route.next_hop_ip))
    return pairs
