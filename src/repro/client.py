"""Thin HTTP client for the ``repro serve`` verification service.

The CLI's ``--server URL`` mode goes through :class:`ServiceClient`; it is
deliberately engine-free (``urllib.request`` + ``json`` only) so a
client-only process never imports the verifier.  Failure modes map onto the
exception hierarchy precisely, because the CLI turns them into distinct exit
codes:

* the server cannot be reached at all (connection refused, DNS failure,
  timeout) → :class:`~repro.exceptions.ServiceUnavailable`;
* the server answered but unintelligibly (HTTP 5xx, or a body that is not
  the JSON the API promises) → :class:`~repro.exceptions.ServerProtocolError`;
* the server rejected the request on its merits (4xx with a JSON ``error``
  document: bad spec, unknown namespace, queue full) →
  :class:`~repro.exceptions.ServiceError` with the server's message.

All three are :class:`~repro.exceptions.ReproError` subclasses, so existing
generic error handling still catches them.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional

from repro.exceptions import ReproError, ServerProtocolError, ServiceError, ServiceUnavailable

#: Job states that mean the server finished with the job.
FINISHED_STATES = ("done", "partial", "failed")

#: Default per-request socket timeout (seconds).  Requests are cheap — the
#: expensive verification work happens between ``push`` and ``wait`` polls.
DEFAULT_TIMEOUT = 30.0

#: Poll cadence of :meth:`ServiceClient.wait`.
POLL_SECONDS = 0.15


class ServiceClient:
    """One server endpoint; stateless between calls."""

    def __init__(self, base_url: str, timeout: float = DEFAULT_TIMEOUT) -> None:
        if "://" not in base_url:
            base_url = "http://" + base_url
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------ transport
    def _request(self, method: str, path: str, body: Optional[Dict] = None) -> Dict[str, object]:
        url = self.base_url + path
        data = json.dumps(body).encode("utf-8") if body is not None else None
        request = urllib.request.Request(
            url,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"} if data else {},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                raw = response.read()
                status = response.status
        except urllib.error.HTTPError as exc:
            # The server answered with an error status; its body should still
            # be the API's JSON error document.
            raw = exc.read()
            status = exc.code
            if status >= 500:
                raise ServerProtocolError(
                    f"server error {status} from {method} {url}: "
                    f"{_error_message(raw) or raw[:200].decode('utf-8', 'replace')}"
                ) from exc
            message = _error_message(raw)
            if message is None:
                raise ServerProtocolError(
                    f"non-JSON {status} response from {method} {url}"
                ) from exc
            raise ServiceError(message) from exc
        except urllib.error.URLError as exc:
            raise ServiceUnavailable(
                f"cannot reach verification server at {self.base_url}: {exc.reason}"
            ) from exc
        except (TimeoutError, ConnectionError, OSError) as exc:
            raise ServiceUnavailable(
                f"cannot reach verification server at {self.base_url}: {exc}"
            ) from exc
        try:
            document = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ServerProtocolError(
                f"server at {self.base_url} returned a non-JSON body for "
                f"{method} {path} (status {status})"
            ) from exc
        if not isinstance(document, dict):
            raise ServerProtocolError(
                f"server at {self.base_url} returned a non-object JSON body for "
                f"{method} {path}"
            )
        return document

    # ------------------------------------------------------------------ API
    def health(self) -> Dict[str, object]:
        return self._request("GET", "/v1/health")

    def metrics(self) -> Dict[str, object]:
        return self._request("GET", "/metrics")

    def namespaces(self) -> List[str]:
        document = self._request("GET", "/v1/namespaces")
        return list(document.get("namespaces", []))

    def namespace(self, name: str) -> Dict[str, object]:
        return self._request("GET", f"/v1/namespaces/{name}")

    def push(self, namespace: str, payload: Dict[str, object]) -> Dict[str, object]:
        """``POST .../push``; returns the receipt (``job``, ``sequence``...)."""
        return self._request("POST", f"/v1/namespaces/{namespace}/push", body=payload)

    def job(self, job_id: str) -> Dict[str, object]:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def wait(self, job_id: str, timeout: Optional[float] = None) -> Dict[str, object]:
        """Poll until the job finishes; returns the final job document.

        ``timeout`` bounds the *overall* wait (``None`` waits forever); a
        verification that outlives it raises :class:`ServiceError` — the job
        keeps running server-side and can still be polled later.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            document = self.job(job_id)
            if document.get("state") in FINISHED_STATES:
                return document
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError(
                    f"job {job_id} did not finish within {timeout:.0f}s "
                    "(it is still running server-side)"
                )
            time.sleep(POLL_SECONDS)

    def run(self, namespace: str, payload: Dict[str, object],
            timeout: Optional[float] = None) -> Dict[str, object]:
        """Push and wait — the common client round trip."""
        receipt = self.push(namespace, payload)
        job_id = receipt.get("job")
        if not isinstance(job_id, str):
            raise ServerProtocolError(f"push receipt carries no job id: {receipt}")
        return self.wait(job_id, timeout=timeout)


def _error_message(raw: bytes) -> Optional[str]:
    """The ``error`` field of a JSON error body, or None if it isn't one."""
    try:
        document = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        return None
    if isinstance(document, dict) and isinstance(document.get("error"), str):
        return document["error"]
    return None


# Re-exported so callers can catch client failures without importing the
# exceptions module separately.
__all__ = [
    "ServiceClient",
    "FINISHED_STATES",
    "DEFAULT_TIMEOUT",
    "ReproError",
    "ServiceError",
    "ServiceUnavailable",
    "ServerProtocolError",
]
